"""Chrome trace-event JSON export of a reconstructed DSCG.

Maps the paper's artifacts onto the trace-event format that Perfetto
(ui.perfetto.dev) and chrome://tracing load directly:

- one **trace id per FTL chain** — every event carries the chain's
  Function UUID as ``args.trace_id``;
- each reconstructed :class:`~repro.analysis.dscg.CallNode` becomes
  complete ``X`` duration events: a *client* slice spanning probe 1 end →
  probe 4 start on the caller's pid/tid, and a *server* slice spanning
  probe 2 end → probe 3 start on the callee's pid/tid (both windows are
  single-host, so no clock synchronization is assumed — the same
  invariant the Section 3.2 latency formulas rely on);
- the slice the latency analyzer measures (``primary: true``) also
  carries the **probe-overhead-compensated** latency L(F) and the O_F
  term, so the Perfetto slice duration minus ``args.probe_overhead_ns``
  reproduces the offline latency table;
- oneway forks become flow events (``s``/``f``) from the parent chain's
  stub slice to the forked chain's root slice;
- pid/tid metadata events name the simulated processes and threads.

Only nodes whose probes sampled wall clocks (latency/full monitor modes)
produce slices; the document counts what it had to skip instead of
silently truncating.
"""

from __future__ import annotations

import json

from repro.analysis.dscg import CallNode, Dscg
from repro.analysis.latency import causality_overhead, end_to_end_latency
from repro.core.events import CallKind, TracingEvent

_NS_PER_US = 1_000.0


def _window(node: CallNode, side: str):
    """(start_record, end_record) of one side's measured window, or None."""
    if side == "client":
        start_event, end_event = TracingEvent.STUB_START, TracingEvent.STUB_END
    else:
        start_event, end_event = TracingEvent.SKEL_START, TracingEvent.SKEL_END
    start = node.records.get(start_event)
    end = node.records.get(end_event)
    if start is None or end is None:
        return None
    if start.wall_end is None or end.wall_start is None:
        return None
    return start, end


def _primary_side(node: CallNode) -> str:
    """Which window the Section-3.2 latency formula measures for this node."""
    if node.collocated or (
        node.call_kind is CallKind.ONEWAY and node.oneway_side == "skel"
    ):
        return "server"
    return "client"


class _TidMap:
    """Remap CPython thread idents to small per-process tids for readability."""

    def __init__(self):
        self._tids: dict[tuple[int, int], int] = {}
        self._next: dict[int, int] = {}

    def tid(self, pid: int, thread_ident: int) -> int:
        key = (pid, thread_ident)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._next.get(pid, 1)
            self._next[pid] = tid + 1
            self._tids[key] = tid
        return tid

    def items(self):
        return sorted(self._tids.items(), key=lambda kv: kv[1])


def _implicated_chains(incidents) -> dict[str, list[str]]:
    """chain uuid -> sorted incident ids that implicate it."""
    implicated: dict[str, list[str]] = {}
    for report in incidents or ():
        for chain_uuid in report.implicated_chains:
            implicated.setdefault(chain_uuid, []).append(report.incident_id)
    return {chain: sorted(ids) for chain, ids in implicated.items()}


def _incident_summaries(incidents) -> list[dict]:
    summaries = []
    for report in incidents or ():
        cause = report.root_cause
        summaries.append(
            {
                "incident_id": report.incident_id,
                "function": report.function,
                "root_cause_component": cause.component if cause else None,
                "root_cause_function": cause.function if cause else None,
            }
        )
    return summaries


def chrome_trace_document(dscg: Dscg, run_id: str = "", incidents=None) -> dict:
    """Build the trace-event document (a JSON-serializable dict).

    ``incidents`` (a list of streaming
    :class:`~repro.analysis.streaming.incident.IncidentReport`) annotates
    every slice on an implicated chain with its incident ids, so the
    Perfetto query ``args.incident_ids`` jumps straight to the affected
    traces; the summaries land in ``otherData.incidents``.
    """
    implicated = _implicated_chains(incidents)
    events: list[dict] = []
    tids = _TidMap()
    processes: dict[int, str] = {}
    skipped_timeless = 0
    #: chain uuid -> (pid, tid, ts) of its root slice, for oneway flows.
    chain_entry: dict[str, tuple[int, int, float]] = {}
    #: pending flows: (parent slice pid/tid/ts, child chain uuid)
    flow_origins: list[tuple[int, int, float, str]] = []

    for tree in dscg.chains.values():
        for node in tree.walk():
            primary = _primary_side(node)
            emitted = False
            for side in ("client", "server"):
                window = _window(node, side)
                if window is None:
                    continue
                start, end = window
                pid = start.pid
                tid = tids.tid(pid, start.thread_id)
                processes.setdefault(pid, start.process)
                ts_us = start.wall_end / _NS_PER_US
                dur_us = max(end.wall_start - start.wall_end, 0) / _NS_PER_US
                args: dict = {
                    "trace_id": node.chain_uuid,
                    "side": side,
                    "object_id": node.object_id,
                    "component": node.component,
                    "domain": node.domain.value,
                    "event_seq": start.event_seq,
                }
                incident_ids = implicated.get(node.chain_uuid)
                if incident_ids:
                    args["incident_ids"] = incident_ids
                if side == primary:
                    args["primary"] = True
                    args["probe_overhead_ns"] = causality_overhead(node)
                    latency = end_to_end_latency(node)
                    if latency is not None:
                        args["latency_compensated_ns"] = latency
                events.append(
                    {
                        "name": node.function,
                        "cat": f"{node.domain.value},{node.call_kind.value}",
                        "ph": "X",
                        "ts": ts_us,
                        "dur": dur_us,
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
                emitted = True
                if side == primary:
                    if node.parent is None and node.chain_uuid not in chain_entry:
                        chain_entry[node.chain_uuid] = (pid, tid, ts_us)
                    if node.forked_chain_uuid:
                        flow_origins.append(
                            (pid, tid, ts_us, node.forked_chain_uuid)
                        )
            if not emitted:
                skipped_timeless += 1

    for pid, tid, ts_us, child_uuid in flow_origins:
        target = chain_entry.get(child_uuid)
        if target is None:
            continue
        flow_id = child_uuid[:16]
        events.append(
            {
                "name": "oneway_fork",
                "cat": "oneway",
                "ph": "s",
                "id": flow_id,
                "ts": ts_us,
                "pid": pid,
                "tid": tid,
                "args": {"child_trace_id": child_uuid},
            }
        )
        t_pid, t_tid, t_ts = target
        events.append(
            {
                "name": "oneway_fork",
                "cat": "oneway",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": t_ts,
                "pid": t_pid,
                "tid": t_tid,
                "args": {"child_trace_id": child_uuid},
            }
        )

    metadata: list[dict] = []
    for pid, name in sorted(processes.items()):
        metadata.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        )
    for (pid, thread_ident), tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"thread-{thread_ident}"},
            }
        )

    other_data = {
        "format": "repro-chrome-trace",
        "run_id": run_id,
        "chains": len(dscg.chains),
        "slices": sum(1 for e in events if e["ph"] == "X"),
        "skipped_timeless_nodes": skipped_timeless,
    }
    if incidents:
        other_data["incidents"] = _incident_summaries(incidents)
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }


def render_chrome_trace(
    dscg: Dscg, run_id: str = "", indent: int | None = None, incidents=None
) -> str:
    """Chrome trace JSON text, ready for Perfetto's *Open trace file*."""
    return json.dumps(
        chrome_trace_document(dscg, run_id=run_id, incidents=incidents),
        indent=indent,
    )
