"""Prometheus text exposition format (version 0.0.4) for the registry.

Counters, gauges and histograms render exactly as a Prometheus scrape
endpoint would emit them, so the output of ``repro metrics`` can be fed
to promtool, pasted into PromQL consoles, or diffed in tests:

    # HELP repro_probe_records_total Probe records written, by probe.
    # TYPE repro_probe_records_total counter
    repro_probe_records_total{probe="stub_start"} 42

Histograms expose cumulative ``_bucket{le=...}`` series plus ``_sum``
and ``_count``, with the mandatory ``+Inf`` bucket.
"""

from __future__ import annotations

from repro.telemetry.metrics import Histogram, MetricFamily, MetricsRegistry


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_number(value: int | float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _label_text(names: tuple[str, ...], values: tuple[str, ...],
                extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_family(family: MetricFamily, lines: list[str]) -> None:
    if family.help:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for label_values, metric in family.children():
        if isinstance(metric, Histogram):
            counts, total, count = metric.snapshot()
            cumulative = 0
            for boundary, bucket in zip(metric.boundaries, counts):
                cumulative += bucket
                labels = _label_text(
                    family.label_names, label_values,
                    extra=(("le", _format_number(boundary)),),
                )
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
            labels = _label_text(family.label_names, label_values,
                                 extra=(("le", "+Inf"),))
            lines.append(f"{family.name}_bucket{labels} {count}")
            labels = _label_text(family.label_names, label_values)
            lines.append(f"{family.name}_sum{labels} {_format_number(total)}")
            lines.append(f"{family.name}_count{labels} {count}")
        else:
            labels = _label_text(family.label_names, label_values)
            lines.append(f"{family.name}{labels} {_format_number(metric.value())}")


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in the registry as Prometheus exposition text."""
    lines: list[str] = []
    for family in registry.collect():
        _render_family(family, lines)
    return "\n".join(lines) + ("\n" if lines else "")
