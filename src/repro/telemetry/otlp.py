"""OTLP-style span JSON export of a reconstructed DSCG.

Emits the OpenTelemetry OTLP/JSON trace shape (``resourceSpans`` →
``scopeSpans`` → ``spans``) without requiring any OpenTelemetry
dependency — the document is plain JSON that OTLP-compatible backends
and viewers understand:

- the FTL chain UUID (already 32 lowercase hex characters) **is** the
  OTLP ``traceId``;
- each call node yields a CLIENT span over the stub window and, for
  remote calls, a SERVER span over the skeleton window whose parent is
  the CLIENT span — the parent/child edges of the Figure-4 state machine
  become ``parentSpanId`` references;
- oneway forks become span **links** from the forked chain's root span
  back to the forking stub span (OTLP's mechanism for causality across
  trace boundaries);
- each simulated process is one OTLP *resource* (``service.name``,
  ``host.name``, ``process.pid``).

Span ids are 16-hex digests derived deterministically from (chain uuid,
event number, side), so re-exporting the same run yields the same ids.
"""

from __future__ import annotations

import hashlib
import json

from repro.analysis.dscg import CallNode, Dscg
from repro.analysis.latency import causality_overhead, end_to_end_latency
from repro.core.events import TracingEvent
from repro.telemetry.chrome_trace import (
    _implicated_chains,
    _incident_summaries,
    _primary_side,
    _window,
)

_SPAN_KIND_INTERNAL = 1
_SPAN_KIND_SERVER = 2
_SPAN_KIND_CLIENT = 3


def _span_id(chain_uuid: str, node_seq: int, side: str) -> str:
    digest = hashlib.sha1(f"{chain_uuid}:{node_seq}:{side}".encode()).hexdigest()
    return digest[:16]


def _node_seq(node: CallNode) -> int:
    """Stable per-node discriminator: its earliest probe event number."""
    return min(record.event_seq for record in node.records.values())


def _attr(key: str, value) -> dict:
    if isinstance(value, bool):
        return {"key": key, "value": {"boolValue": value}}
    if isinstance(value, int):
        # OTLP/JSON encodes 64-bit ints as strings.
        return {"key": key, "value": {"intValue": str(value)}}
    return {"key": key, "value": {"stringValue": str(value)}}


def otlp_document(dscg: Dscg, run_id: str = "", incidents=None) -> dict:
    """Build the OTLP/JSON-shaped document (a JSON-serializable dict).

    ``incidents`` annotates every span on an implicated chain with a
    ``repro.incident_ids`` attribute (comma-joined incident ids) and
    summarizes the incidents in ``otherData.incidents``.
    """
    implicated = _implicated_chains(incidents)
    #: process name -> (resource attrs, spans)
    by_process: dict[str, dict] = {}
    skipped_timeless = 0
    #: chain uuid -> root span reference for oneway links.
    chain_root_span: dict[str, tuple[str, str]] = {}
    pending_links: list[tuple[str, str, str]] = []  # child chain, parent trace, parent span

    def resource_bucket(record) -> list[dict]:
        entry = by_process.get(record.process)
        if entry is None:
            entry = {
                "resource": {
                    "attributes": [
                        _attr("service.name", record.process),
                        _attr("host.name", record.host),
                        _attr("process.pid", record.pid),
                        _attr("repro.platform", record.platform),
                    ]
                },
                "spans": [],
            }
            by_process[record.process] = entry
        return entry["spans"]

    def parent_span_id(node: CallNode) -> str:
        """Nearest enclosing span id within the chain (server side preferred)."""
        parent = node.parent
        while parent is not None:
            seq = _node_seq(parent)
            if _window(parent, "server") is not None and not parent.collocated:
                return _span_id(parent.chain_uuid, seq, "server")
            if _window(parent, "client") is not None or _window(parent, "server"):
                side = "client" if _window(parent, "client") is not None else "server"
                return _span_id(parent.chain_uuid, seq, side)
            parent = parent.parent
        return ""

    for tree in dscg.chains.values():
        for node in tree.walk():
            seq = _node_seq(node)
            primary = _primary_side(node)
            client_window = _window(node, "client")
            server_window = _window(node, "server")
            if client_window is None and server_window is None:
                skipped_timeless += 1
                continue
            client_id = _span_id(node.chain_uuid, seq, "client")
            enclosing = parent_span_id(node)
            made_root = False

            for side, window in (("client", client_window), ("server", server_window)):
                if window is None:
                    continue
                start, end = window
                if node.collocated:
                    kind = _SPAN_KIND_INTERNAL
                else:
                    kind = _SPAN_KIND_CLIENT if side == "client" else _SPAN_KIND_SERVER
                if side == "client":
                    parent_id = enclosing
                else:
                    parent_id = client_id if client_window is not None else enclosing
                span_id = _span_id(node.chain_uuid, seq, side)
                attributes = [
                    _attr("repro.side", side),
                    _attr("repro.object_id", node.object_id),
                    _attr("repro.component", node.component),
                    _attr("repro.domain", node.domain.value),
                    _attr("repro.call_kind", node.call_kind.value),
                    _attr("repro.collocated", node.collocated),
                    _attr("repro.event_seq", start.event_seq),
                ]
                incident_ids = implicated.get(node.chain_uuid)
                if incident_ids:
                    attributes.append(
                        _attr("repro.incident_ids", ",".join(incident_ids))
                    )
                if side == primary:
                    attributes.append(
                        _attr("repro.probe_overhead_ns", causality_overhead(node))
                    )
                    latency = end_to_end_latency(node)
                    if latency is not None:
                        attributes.append(
                            _attr("repro.latency_compensated_ns", latency)
                        )
                span = {
                    "traceId": node.chain_uuid,
                    "spanId": span_id,
                    "parentSpanId": parent_id,
                    "name": node.function,
                    "kind": kind,
                    "startTimeUnixNano": str(start.wall_end),
                    "endTimeUnixNano": str(end.wall_start),
                    "attributes": attributes,
                    "links": [],
                }
                if (
                    node.parent is None
                    and not made_root
                    and node.chain_uuid not in chain_root_span
                ):
                    chain_root_span[node.chain_uuid] = (node.chain_uuid, span_id)
                    made_root = True
                resource_bucket(start).append(span)
            if node.forked_chain_uuid:
                origin_side = "client" if client_window is not None else "server"
                pending_links.append(
                    (
                        node.forked_chain_uuid,
                        node.chain_uuid,
                        _span_id(node.chain_uuid, seq, origin_side),
                    )
                )

    # Wire oneway-fork links: forked chain root span -> forking stub span.
    links_by_span: dict[str, list[dict]] = {}
    for child_chain, parent_trace, parent_span in pending_links:
        target = chain_root_span.get(child_chain)
        if target is None:
            continue
        _, child_span_id = target
        links_by_span.setdefault(child_span_id, []).append(
            {
                "traceId": parent_trace,
                "spanId": parent_span,
                "attributes": [_attr("repro.link", "oneway_fork")],
            }
        )
    if links_by_span:
        for entry in by_process.values():
            for span in entry["spans"]:
                extra = links_by_span.get(span["spanId"])
                if extra:
                    span["links"].extend(extra)

    resource_spans = [
        {
            "resource": entry["resource"],
            "scopeSpans": [
                {
                    "scope": {"name": "repro.telemetry", "version": "1"},
                    "spans": entry["spans"],
                }
            ],
        }
        for _, entry in sorted(by_process.items())
    ]
    other_data = {
        "format": "repro-otlp-trace",
        "run_id": run_id,
        "chains": len(dscg.chains),
        "skipped_timeless_nodes": skipped_timeless,
    }
    if incidents:
        other_data["incidents"] = _incident_summaries(incidents)
    return {
        "resourceSpans": resource_spans,
        "otherData": other_data,
    }


def render_otlp(
    dscg: Dscg, run_id: str = "", indent: int | None = None, incidents=None
) -> str:
    """OTLP/JSON text of the DSCG's spans."""
    return json.dumps(
        otlp_document(dscg, run_id=run_id, incidents=incidents), indent=indent
    )
