"""Live metrics pipeline: process buffers → OnlineMonitor → registry.

This is the "on-line perspective for application-level system
management" of the paper's Section 6, closed into a loop: the same probe
records the quiescence-time collector gathers are streamed through the
:class:`~repro.analysis.online.OnlineMonitor` *while the system runs*,
and the monitor keeps a :class:`~repro.telemetry.metrics.MetricsRegistry`
current with in-flight gauges, rolling latency histograms and SLO-breach
counters. :func:`~repro.telemetry.exposition.render_prometheus` turns
any snapshot into a scrape body.

The pipeline can be driven manually (:meth:`LiveMetricsPipeline.poll`)
or from a background sampler thread (:meth:`start`/:meth:`stop`)."""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.platform.process import SimProcess
from repro.telemetry.exposition import render_prometheus
from repro.telemetry.metrics import MetricsRegistry


class LiveMetricsPipeline:
    """Feeds live probe records into an online monitor and a registry."""

    def __init__(
        self,
        processes: Iterable[SimProcess],
        registry: MetricsRegistry | None = None,
        latency_slo_ns: int | None = None,
        on_alert: Callable | None = None,
    ):
        # Imported here: repro.analysis.online itself uses telemetry
        # metrics, and a module-level import would close that cycle
        # during package initialization.
        from repro.analysis.online import OnlineMonitor

        self.processes = list(processes)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.monitor = OnlineMonitor(
            latency_slo_ns=latency_slo_ns,
            on_alert=on_alert,
            registry=self.registry,
        )
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: Exception that killed the background sampler, if any. A dead
        #: daemon thread is otherwise invisible: metrics silently stop
        #: updating while the pipeline looks started.
        self.sampler_error: BaseException | None = None

    # ------------------------------------------------------------------

    def poll(self) -> int:
        """Pull any new records from every process buffer; returns count."""
        return self.monitor.poll(self.processes)

    def alerts(self):
        """Alerts raised so far (SLO breaches, abnormal transitions)."""
        return self.monitor.alerts()

    def render(self) -> str:
        """Prometheus exposition text of the registry's current state."""
        return render_prometheus(self.registry)

    # ------------------------------------------------------------------
    # Background sampling

    @property
    def running(self) -> bool:
        """Whether the sampler thread is alive and polling."""
        return self._thread is not None and self._thread.is_alive()

    def start(self, interval_s: float = 0.05) -> None:
        """Poll from a daemon thread every ``interval_s`` seconds."""
        if self._thread is not None:
            return
        self._stop.clear()
        self.sampler_error = None

        def sample() -> None:
            try:
                while not self._stop.wait(interval_s):
                    self.poll()
            except BaseException as exc:
                self.sampler_error = exc

        self._thread = threading.Thread(
            target=sample, name="telemetry-pipeline", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampler, run one final catch-up poll, surface errors.

        If the sampler thread died between polls, the exception that
        killed it is re-raised here (after the catch-up poll) instead of
        vanishing with the daemon thread.
        """
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self.poll()
        if self.sampler_error is not None:
            error, self.sampler_error = self.sampler_error, None
            raise RuntimeError("telemetry sampler thread died") from error
