"""Framework self-metrics: counters, gauges, and fixed-boundary histograms.

The monitoring stack of the paper observes *applications*; this module
observes the monitoring stack itself, which is what makes its overhead
claim (Section 4's "light-weighted probes") auditable at runtime instead
of only in offline benchmarks.

Design constraints, in order:

1. **The metrics-off path must cost nothing.** Instrumented call sites
   hold :data:`NULL_COUNTER`-style singletons by default; an update is a
   single no-op method call with no allocation, no branch on a config
   object, and no lock.
2. **The metrics-on hot path must not serialize threads.** Counters and
   histograms are lock-striped: each update takes one of a small set of
   locks selected by the calling thread's identity, so concurrent probes
   on different threads almost never contend. Reads merge the stripes.
3. **Values are exact.** Striping shards the locks, not the arithmetic —
   a read sums every stripe under its lock, so N threads doing M
   increments always total exactly N*M.

Histogram boundaries default to nanosecond latency buckets spanning 1 us
to 10 s, matching the probe wall/CPU readings which are all integers of
nanoseconds.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator, Sequence

from repro.errors import MonitorError

#: Nanosecond latency buckets: 1 us .. 10 s in a 1-2.5-5 progression.
DEFAULT_LATENCY_BOUNDARIES_NS: tuple[int, ...] = (
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
)

_STRIPE_COUNT = 8  # power of two; plenty for the simulated thread pools
_STRIPE_MASK = _STRIPE_COUNT - 1


def _stripe_index() -> int:
    """Pick a stripe for the calling thread.

    Thread identities on CPython are addresses of thread structs, so the
    low bits carry no entropy; fold the middle bits down instead.
    """
    ident = threading.get_ident()
    return ((ident >> 6) ^ (ident >> 16)) & _STRIPE_MASK


class _CounterStripe:
    __slots__ = ("lock", "value")

    def __init__(self):
        self.lock = threading.Lock()
        self.value = 0


class Counter:
    """Monotonically increasing counter (lock-striped, exact on read)."""

    kind = "counter"
    __slots__ = ("_stripes",)

    def __init__(self):
        self._stripes = tuple(_CounterStripe() for _ in range(_STRIPE_COUNT))

    def inc(self, amount: int | float = 1) -> None:
        stripe = self._stripes[_stripe_index()]
        with stripe.lock:
            stripe.value += amount

    def value(self) -> int | float:
        total = 0
        for stripe in self._stripes:
            with stripe.lock:
                total += stripe.value
        return total


class Gauge:
    """A value that can go up and down (in-flight calls, queue depths)."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    def value(self) -> int | float:
        with self._lock:
            return self._value


class _HistogramStripe:
    __slots__ = ("lock", "counts", "sum")

    def __init__(self, bucket_count: int):
        self.lock = threading.Lock()
        self.counts = [0] * bucket_count
        self.sum = 0


class Histogram:
    """Fixed-boundary histogram (lock-striped).

    ``boundaries`` are upper bounds: an observation lands in the first
    bucket whose boundary is >= the value (Prometheus ``le`` semantics);
    values above the last boundary land in the implicit +Inf bucket.
    """

    kind = "histogram"
    __slots__ = ("boundaries", "_stripes")

    def __init__(self, boundaries: Sequence[int | float] = DEFAULT_LATENCY_BOUNDARIES_NS):
        bounds = tuple(boundaries)
        if not bounds:
            raise MonitorError("histogram needs at least one bucket boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MonitorError("histogram boundaries must be strictly increasing")
        self.boundaries = bounds
        self._stripes = tuple(
            _HistogramStripe(len(bounds) + 1) for _ in range(_STRIPE_COUNT)
        )

    def observe(self, value: int | float) -> None:
        index = bisect_left(self.boundaries, value)
        stripe = self._stripes[_stripe_index()]
        with stripe.lock:
            stripe.counts[index] += 1
            stripe.sum += value

    def snapshot(self) -> tuple[list[int], int | float, int]:
        """Merged ``(per-bucket counts, sum, total count)`` across stripes."""
        counts = [0] * (len(self.boundaries) + 1)
        total = 0
        for stripe in self._stripes:
            with stripe.lock:
                for i, n in enumerate(stripe.counts):
                    counts[i] += n
                total += stripe.sum
        return counts, total, sum(counts)

    def count(self) -> int:
        return self.snapshot()[2]


class _NullMetric:
    """Shared behaviour of the no-op singletons: accept anything, do nothing."""

    __slots__ = ()

    def labels(self, *values: str) -> "_NullMetric":
        return self

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass

    def value(self) -> int:
        return 0


class NullCounter(_NullMetric):
    kind = "counter"


class NullGauge(_NullMetric):
    kind = "gauge"


class NullHistogram(_NullMetric):
    kind = "histogram"


#: Singletons used by every instrumented call site while telemetry is off.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()

_METRIC_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its per-label-value children.

    An unlabeled family has exactly one child keyed by the empty tuple;
    :class:`MetricsRegistry` hands that child out directly so plain
    counters need no ``.labels()`` hop on the hot path.
    """

    def __init__(self, name: str, help: str, kind: str, label_names: tuple[str, ...],
                 **metric_kwargs):
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = label_names
        self._metric_kwargs = metric_kwargs
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def labels(self, *values: str) -> Counter | Gauge | Histogram:
        if len(values) != len(self.label_names):
            raise MonitorError(
                f"metric {self.name} takes labels {self.label_names},"
                f" got {len(values)} value(s)"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _METRIC_CLASSES[self.kind](**self._metric_kwargs)
                    self._children[key] = child
        return child

    def children(self) -> list[tuple[tuple[str, ...], Counter | Gauge | Histogram]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Thread-safe, get-or-create registry of metric families."""

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(self, name: str, help: str, kind: str,
                labels: Sequence[str], **metric_kwargs) -> MetricFamily:
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, help, kind, label_names, **metric_kwargs)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise MonitorError(
                f"metric {name} already registered as {family.kind}, not {kind}"
            )
        if family.label_names != label_names:
            raise MonitorError(
                f"metric {name} already registered with labels"
                f" {family.label_names}, not {label_names}"
            )
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter | MetricFamily:
        family = self._family(name, help, "counter", labels)
        return family if family.label_names else family.labels()

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge | MetricFamily:
        family = self._family(name, help, "gauge", labels)
        return family if family.label_names else family.labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        boundaries: Sequence[int | float] = DEFAULT_LATENCY_BOUNDARIES_NS,
    ) -> Histogram | MetricFamily:
        family = self._family(name, help, "histogram", labels, boundaries=boundaries)
        return family if family.label_names else family.labels()

    def collect(self) -> Iterator[MetricFamily]:
        """Families in registration-stable (sorted-by-name) order."""
        with self._lock:
            families = sorted(self._families.items())
        for _, family in families:
            yield family
