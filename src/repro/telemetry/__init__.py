"""Telemetry: framework self-metrics, trace export, and a live pipeline.

Three pillars:

- **Metrics core** (:mod:`repro.telemetry.metrics`,
  :mod:`repro.telemetry.exposition`): a thread-safe, lock-striped
  :class:`MetricsRegistry` with counters, gauges and fixed-boundary
  nanosecond histograms, plus Prometheus text exposition. The framework's
  hot paths (ORB dispatch, GIOP framing, COM ORPC, apartment queues,
  probe recording, collector drains) are instrumented behind no-op
  defaults — call :func:`enable` to start collecting.
- **Trace export** (:mod:`repro.telemetry.chrome_trace`,
  :mod:`repro.telemetry.otlp`): reconstructed DSCG chains rendered as
  Chrome trace-event JSON (loadable in Perfetto) or OTLP-style span JSON
  with parent/child and oneway-fork links.
- **Live pipeline** (:mod:`repro.telemetry.pipeline`): stream probe
  records through the online monitor into a registry while the system
  runs, for scrape-style management.

The exporters and the pipeline depend on :mod:`repro.analysis`, which the
instrumented core modules sit underneath — so those names load lazily
(PEP 562) and only the dependency-free metrics core is imported eagerly.
"""

from repro.telemetry.exposition import render_prometheus
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BOUNDARIES_NS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.telemetry.runtime import (
    active_registry,
    disable,
    enable,
    is_enabled,
    metrics_binder,
)

#: Lazily imported name -> defining submodule (avoids telemetry → analysis
#: → collector → core → telemetry import cycles at package-init time).
_LAZY = {
    "chrome_trace_document": "repro.telemetry.chrome_trace",
    "render_chrome_trace": "repro.telemetry.chrome_trace",
    "otlp_document": "repro.telemetry.otlp",
    "render_otlp": "repro.telemetry.otlp",
    "LiveMetricsPipeline": "repro.telemetry.pipeline",
}

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BOUNDARIES_NS",
    "Gauge",
    "Histogram",
    "LiveMetricsPipeline",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "active_registry",
    "chrome_trace_document",
    "disable",
    "enable",
    "is_enabled",
    "metrics_binder",
    "otlp_document",
    "render_chrome_trace",
    "render_otlp",
    "render_prometheus",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
