"""Process-global telemetry switch and the metric-handle binder protocol.

Hot paths (ORB dispatch, GIOP framing, probe recording, collector
drains) cannot afford a registry lookup per event, and they also cannot
capture real metric objects at import time because telemetry is off by
default. The binder protocol resolves both:

- an instrumented module declares module-level handles initialized to
  the no-op singletons, and registers one ``@metrics_binder`` function;
- the binder rewrites those handles from a real registry when telemetry
  is enabled, and back to the no-ops when it is disabled;
- binders run immediately at registration (so modules imported after
  :func:`enable` pick up the active registry) and again on every
  enable/disable flip.

The result: with telemetry off, an instrumented call site is a dict/
attribute load plus an empty method call — no allocation, no lock.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.telemetry.metrics import MetricsRegistry

_lock = threading.Lock()
_registry: MetricsRegistry | None = None
_binders: list[Callable[[MetricsRegistry | None], None]] = []


def metrics_binder(
    bind: Callable[[MetricsRegistry | None], None],
) -> Callable[[MetricsRegistry | None], None]:
    """Register (and immediately run) a module's metric-handle binder.

    ``bind`` receives the active registry, or ``None`` meaning "reset
    your handles to the no-op singletons".
    """
    with _lock:
        _binders.append(bind)
        registry = _registry
    bind(registry)
    return bind


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn framework self-metrics on, rebinding every instrumented module.

    Idempotent: enabling twice without an explicit registry keeps the
    first registry (and its accumulated values) rather than discarding it.
    """
    global _registry
    with _lock:
        if registry is None:
            registry = _registry if _registry is not None else MetricsRegistry()
        _registry = registry
        binders = list(_binders)
    for bind in binders:
        bind(registry)
    return registry


def disable() -> None:
    """Turn self-metrics off; instrumented modules go back to no-ops."""
    global _registry
    with _lock:
        _registry = None
        binders = list(_binders)
    for bind in binders:
        bind(None)


def active_registry() -> MetricsRegistry | None:
    """The enabled registry, or ``None`` while telemetry is off."""
    with _lock:
        return _registry


def is_enabled() -> bool:
    return active_registry() is not None
