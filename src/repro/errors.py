"""Exception hierarchy shared across the repro packages.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch framework failures without also swallowing application
exceptions that legitimately propagate through remote calls.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all framework errors."""


class IdlError(ReproError):
    """Base class for IDL compiler errors."""


class IdlSyntaxError(IdlError):
    """Raised by the lexer or parser on malformed IDL source."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class IdlSemanticError(IdlError):
    """Raised by semantic analysis (unknown types, duplicate names, ...)."""


class MarshalError(ReproError):
    """Raised when a value cannot be marshalled or unmarshalled."""


class TransportError(ReproError):
    """Raised when a network endpoint cannot deliver a message."""


class TransientCollectorError(ReproError):
    """A retryable failure on the probe-log -> collector delivery path.

    The collector treats this as "the transport hiccuped, the records are
    still in the process buffer" and retries with backoff; anything else
    raised during a drain is a real bug and propagates.
    """


class ComponentCrash(BaseException):
    """A simulated component death injected mid-call.

    Deliberately *not* a :class:`ReproError` (nor even an ``Exception``):
    a crashed component cannot run its own error handling, so the generic
    ``except Exception`` recovery paths in skeletons and servants must not
    be able to catch and mask it. Only the fault-aware dispatch layers
    (ORB request dispatch, the COM channel) handle it — by dropping the
    call on the floor exactly as a dead process would.
    """

    def __init__(self, component: str, operation: str, call_index: int):
        self.component = component
        self.operation = operation
        self.call_index = call_index
        super().__init__(
            f"injected crash of {component} during call #{call_index} to {operation}"
        )


class ObjectNotFound(ReproError):
    """Raised when an object reference does not resolve to a servant."""


class OrbError(ReproError):
    """Raised for ORB lifecycle and dispatch failures."""


class ComError(ReproError):
    """Raised for COM runtime failures (apartments, QueryInterface, ...)."""


class InterfaceNotSupported(ComError):
    """COM E_NOINTERFACE: QueryInterface for an unimplemented IID."""


class BridgeError(ReproError):
    """Raised when the CORBA/COM bridge cannot forward a call."""


class RemoteApplicationError(ReproError):
    """An exception raised by a remote servant, re-raised at the caller.

    Carries the remote exception's repr so the caller can distinguish
    application failures from framework failures.
    """

    def __init__(self, exc_type: str, message: str):
        self.exc_type = exc_type
        self.message = message
        super().__init__(f"{exc_type}: {message}")


class MonitorError(ReproError):
    """Raised for monitoring runtime misconfiguration."""


class StoreError(ReproError):
    """Raised by storage backends on unusable files or misuse."""


class AnalysisError(ReproError):
    """Raised by the off-line analyzer on unusable monitoring data."""


class AbnormalTransition(AnalysisError):
    """A log event stream violated the Figure-4 state machine.

    The analyzer records the failure and restarts from the next record,
    as described in the paper (Section 3.1).
    """

    def __init__(self, message: str, chain_uuid: str = "", event_seq: int = -1):
        self.chain_uuid = chain_uuid
        self.event_seq = event_seq
        super().__init__(message)
