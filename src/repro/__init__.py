"""repro — reproduction of Jun Li's ICDCS 2003 global causality capture paper.

The package implements, in pure Python:

- a simulated distributed platform (hosts, processes, network, clocks),
- an IDL compiler generating plain or probe-instrumented stubs/skeletons,
- a CORBA-like ORB and a COM-like runtime, plus a bridge between them,
- the paper's contribution: the FTL-based global causality tunnel,
- the off-line analyzer (DSCG, latency, CPU, CCSG) and its exports.

Typical entry points::

    from repro import idl, platform, orb, analysis
    from repro.core import MonitorConfig, MonitorMode

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.errors import (
    AnalysisError,
    BridgeError,
    ComError,
    IdlError,
    IdlSemanticError,
    IdlSyntaxError,
    MarshalError,
    MonitorError,
    ObjectNotFound,
    OrbError,
    RemoteApplicationError,
    ReproError,
    TransportError,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BridgeError",
    "ComError",
    "IdlError",
    "IdlSemanticError",
    "IdlSyntaxError",
    "MarshalError",
    "MonitorError",
    "ObjectNotFound",
    "OrbError",
    "RemoteApplicationError",
    "ReproError",
    "TransportError",
    "__version__",
]
