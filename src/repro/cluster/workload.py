"""The cluster's monitored workload, buildable in two topologies.

Every worker ``w`` of ``W`` hosts a *driver* and a *server* endpoint
(each on its own :class:`~repro.platform.Host` with its own clock), and
driver ``w`` calls server ``(w+1) % W`` — a ring, so with ``W >= 2``
every data-plane call genuinely crosses OS processes.

The same builders produce the *single-process reference*: all ``W``
worker deployments inside one interpreter over one in-memory
:class:`~repro.platform.Network`. Determinism comes from what each
deployment owns privately — seeded per-worker UUID factories, a
:class:`~repro.platform.VirtualClock` per host that advances only
through explicit ``consume`` calls, per-ORB object-key and connection
counters — so the records a worker produces depend only on its index
and call count, never on which interpreter (or how many) runs it.
That is what the cluster-vs-single-process bit-identity check
(:mod:`repro.cluster.identity`) leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.orb import AsyncioDispatch, InterfaceRegistry, Orb, ThreadPerRequest
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock

#: The ring workload's IDL: one sync operation is enough, the cluster's
#: subject is the deployment topology, not the invocation styles
#: (the corba/embedded/... workloads already cover those).
CLUSTER_IDL = """
module CL {
  interface Svc {
    long ping(in long x);
  };
};
"""

#: Nanoseconds the driver's virtual clock consumes before each call.
THINK_NS = 200
#: Base + per-call-varying virtual nanoseconds the servant consumes.
SERVICE_BASE_NS = 300
SERVICE_STEP_NS = 50


def driver_name(index: int) -> str:
    return f"driver-{index:02d}"


def server_name(index: int) -> str:
    return f"server-{index:02d}"


@dataclass
class WorkerDeployment:
    """One worker's pair of endpoints, pre-wiring."""

    index: int
    workers: int
    driver: SimProcess
    server: SimProcess
    driver_orb: Orb
    server_orb: Orb
    driver_clock: VirtualClock
    local_ref_url: str
    stub: Any = None
    #: Collection order within the worker; the coordinator concatenates
    #: these lists in worker order to mirror the reference collection.
    processes: list = field(default_factory=list)

    @property
    def target_address(self) -> str:
        """The ring neighbour this worker's driver calls."""
        return server_name((self.index + 1) % self.workers)

    def connect(self, ref_urls: dict[str, str]) -> None:
        """Resolve the ring neighbour's stub from the published ref map."""
        from repro.orb.refs import ObjectRef

        ref = ObjectRef.from_url(ref_urls[self.target_address])
        self.stub = self.driver_orb.resolve(ref)

    def shutdown(self) -> None:
        for process in self.processes:
            process.shutdown()


def build_worker_deployment(
    index: int,
    workers: int,
    network,
    monitored: bool = True,
    request_timeout: float = 5.0,
) -> WorkerDeployment:
    """Build worker ``index``'s endpoints on ``network``.

    ``network`` is either a per-worker
    :class:`~repro.cluster.transport.SocketTransport` (cluster mode) or
    the one shared in-memory :class:`~repro.platform.Network`
    (single-process reference) — the builders cannot tell the
    difference, which is the point.
    """
    server_clock = VirtualClock()
    driver_clock = VirtualClock()
    server_host = Host(
        f"chost-{index:02d}-s", PlatformKind.HPUX_11, clock=server_clock
    )
    driver_host = Host(
        f"chost-{index:02d}-d", PlatformKind.HPUX_11, clock=driver_clock
    )

    server = SimProcess(server_name(index), server_host)
    driver = SimProcess(driver_name(index), driver_host)
    if monitored:
        # Per-worker all-hex UUID prefixes keep chain ids disjoint across
        # workers and identical between cluster and reference runs.
        MonitoringRuntime(
            server,
            MonitorConfig(
                mode=MonitorMode.LATENCY,
                uuid_factory=SequentialUuidFactory(f"be{index:02x}"),
            ),
        )
        MonitoringRuntime(
            driver,
            MonitorConfig(
                mode=MonitorMode.LATENCY,
                uuid_factory=SequentialUuidFactory(f"ad{index:02x}"),
            ),
        )

    registry = InterfaceRegistry()
    compiled = compile_idl(CLUSTER_IDL, instrument=True, registry=registry)

    class SvcImpl(compiled.Svc):
        def ping(self, x):
            server_clock.consume(SERVICE_BASE_NS + (x % 7) * SERVICE_STEP_NS)
            return x * 2

    # Server before driver: in cluster mode the coordinator publishes the
    # endpoint map only after every worker has said hello, so all
    # listeners exist before any connect — the reference preserves that
    # order within each worker.
    server_orb = Orb(
        server,
        network,
        policy=ThreadPerRequest(),
        registry=registry,
        request_timeout=request_timeout,
        channel="mux",
    )
    ref = server_orb.activate(SvcImpl())
    driver_orb = Orb(
        driver,
        network,
        registry=registry,
        request_timeout=request_timeout,
        channel="mux",
    )
    deployment = WorkerDeployment(
        index=index,
        workers=workers,
        driver=driver,
        server=server,
        driver_orb=driver_orb,
        server_orb=server_orb,
        driver_clock=driver_clock,
        local_ref_url=ref.to_url(),
        processes=[driver, server],
    )
    return deployment


def drive_calls(
    deployment: WorkerDeployment,
    calls: int,
    on_call: Callable[[int], None] | None = None,
) -> tuple[int, list]:
    """Drive ``calls`` sequential monitored calls over the ring stub.

    One sequential caller per driver — so every clock in the system sees
    a single deterministic operation sequence regardless of how the OS
    schedules the processes, which is what keeps the record streams
    identical between cluster and reference runs.
    """
    if deployment.stub is None:
        raise RuntimeError("deployment not connected; call connect() first")
    errors = 0
    results: list = []
    for i in range(calls):
        deployment.driver_clock.consume(THINK_NS)
        try:
            results.append(deployment.stub.ping(i))
        except BaseException as exc:
            errors += 1
            results.append(type(exc).__name__)
        finally:
            if deployment.driver.monitor is not None:
                deployment.driver.monitor.unbind_ftl()
        if on_call is not None:
            on_call(i)
    return errors, results


def build_load_deployment(
    index: int,
    workers: int,
    network,
    service_spin: int = 200,
    request_timeout: float = 30.0,
) -> WorkerDeployment:
    """Worker ``index``'s endpoints for the *load* plane.

    Differs from the identity plane where throughput demands it: the
    asyncio channel and :class:`AsyncioDispatch` server (thousands of
    in-flight calls at one future each), real wall clocks, and no
    monitoring — the load harness measures the data plane's capacity,
    and PR 4/PR 9 benches already price the probes separately. The
    servant spins ``service_spin`` Python loop iterations (~10us of real
    CPU) so saturation is compute-bound and scales with cores.
    """
    server_host = Host(f"lhost-{index:02d}-s", PlatformKind.HPUX_11)
    driver_host = Host(f"lhost-{index:02d}-d", PlatformKind.HPUX_11)
    server = SimProcess(server_name(index), server_host)
    driver = SimProcess(driver_name(index), driver_host)

    registry = InterfaceRegistry()
    compiled = compile_idl(
        CLUSTER_IDL, instrument=True, registry=registry, async_mode=True
    )

    class SvcImpl(compiled.Svc):
        async def ping(self, x):
            acc = 0
            for i in range(service_spin):
                acc += i ^ x
            return acc

    server_orb = Orb(
        server,
        network,
        policy=AsyncioDispatch(),
        registry=registry,
        request_timeout=request_timeout,
        channel="asyncio",
    )
    ref = server_orb.activate(SvcImpl())
    driver_orb = Orb(
        driver,
        network,
        registry=registry,
        request_timeout=request_timeout,
        channel="asyncio",
    )
    return WorkerDeployment(
        index=index,
        workers=workers,
        driver=driver,
        server=server,
        driver_orb=driver_orb,
        server_orb=server_orb,
        driver_clock=VirtualClock(),  # unused on the load plane
        local_ref_url=ref.to_url(),
        processes=[driver, server],
    )


def build_reference_deployments(
    workers: int, network
) -> list[WorkerDeployment]:
    """All ``workers`` deployments in one interpreter (the reference).

    Build order mirrors the cluster launcher: every deployment exists
    (all servers listening) before any stub is resolved.
    """
    deployments = [
        build_worker_deployment(index, workers, network)
        for index in range(workers)
    ]
    ref_urls = {
        server_name(d.index): d.local_ref_url for d in deployments
    }
    for deployment in deployments:
        deployment.connect(ref_urls)
    return deployments
