"""Framed control + spool-shipping protocol between workers and the
coordinator.

One TCP connection per worker carries everything: hello/endpoint-map
exchange, heartbeats, run commands, and — at collection time — the
worker's sealed ``.seg`` spool files streamed to the coordinator, which
re-ingests them into the central store (:mod:`repro.store.ingest`).

The wire format reuses the data plane's length-prefixed framing
(:func:`~repro.orb.aio.framing.frame_message` /
:class:`~repro.orb.aio.framing.StreamFrameParser`): every message is one
frame, either UTF-8 JSON (control) or raw binary (a segment file's
bytes). A shipment is::

    {"type": "ship-begin", "run_id": ..., "segments": N,
     "record_count": ..., "loss": {...}, "processes": [...],
     "monitor_mode": ..., "schema_version": ...}
    {"type": "segment", "name": "000001.spool.seg", "bytes": M}
    <M raw bytes>                      # repeated per segment
    {"type": "ship-end", "run_id": ...}

Segments ship as their exact on-disk bytes — the coordinator decodes
them with the ordinary :class:`~repro.store.SegmentReader`, so the spool
format is the shipping format and there is no second codec to drift.
"""

from __future__ import annotations

import json
import os
import socket
import threading

from repro.errors import TransportError
from repro.orb.aio.framing import StreamFrameParser, frame_message

_RECV_CHUNK = 1 << 16


class ChannelTimeout(TransportError):
    """A framed recv exceeded its timeout (the channel itself is fine)."""


class FrameChannel:
    """A blocking, framed message channel over one TCP socket.

    Unlike :class:`~repro.cluster.transport.SocketConnection` there is no
    reader thread: control traffic is strictly request/response plus
    explicitly polled heartbeats, so the caller drives ``recv`` directly
    (with a timeout so signal flags — SIGTERM drain — get polled).
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._parser = StreamFrameParser()
        self._pending: list[bytes] = []
        self._send_lock = threading.Lock()

    def send_json(self, message: dict) -> None:
        self.send_bytes(json.dumps(message, sort_keys=True).encode("utf-8"))

    def send_bytes(self, payload: bytes) -> None:
        try:
            with self._send_lock:
                self._sock.sendall(frame_message(payload))
        except OSError as exc:
            raise TransportError(f"control channel send failed: {exc}") from exc

    def recv(self, timeout: float | None = None) -> bytes:
        """Receive one frame; raises TransportError on EOF or timeout."""
        if self._pending:
            return self._pending.pop(0)
        self._sock.settimeout(timeout)
        try:
            while True:
                try:
                    chunk = self._sock.recv(_RECV_CHUNK)
                except socket.timeout:
                    raise ChannelTimeout("control channel recv timed out") from None
                except OSError as exc:
                    raise TransportError(
                        f"control channel recv failed: {exc}"
                    ) from exc
                if not chunk:
                    raise TransportError("control channel closed by peer")
                frames = self._parser.feed(chunk)
                if frames:
                    self._pending.extend(frames[1:])
                    return frames[0]
        finally:
            self._sock.settimeout(None)

    def recv_json(self, timeout: float | None = None) -> dict:
        return json.loads(self.recv(timeout=timeout).decode("utf-8"))

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def ship_run(
    channel: FrameChannel,
    store_path: str,
    run_id: str,
    loss: dict,
    processes: list[str],
    monitor_mode: str,
    record_count: int,
    schema_version: int,
) -> None:
    """Stream one sealed local run (worker side of the protocol).

    The local :class:`~repro.store.SegmentStore` must be closed first so
    every spool is sealed; segments ship in filename order, which is the
    store's arrival order.
    """
    run_dir = os.path.join(store_path, "runs", run_id)
    names = sorted(
        name
        for name in (os.listdir(run_dir) if os.path.isdir(run_dir) else [])
        if name.endswith(".seg") and not name.startswith(".tmp")
    )
    channel.send_json(
        {
            "type": "ship-begin",
            "run_id": run_id,
            "segments": len(names),
            "record_count": record_count,
            "loss": loss,
            "processes": processes,
            "monitor_mode": monitor_mode,
            "schema_version": schema_version,
        }
    )
    for name in names:
        with open(os.path.join(run_dir, name), "rb") as handle:
            data = handle.read()
        channel.send_json({"type": "segment", "name": name, "bytes": len(data)})
        channel.send_bytes(data)
    channel.send_json({"type": "ship-end", "run_id": run_id})
