"""Long-lived cluster service behind ``repro cluster up/run/down``.

A :class:`~repro.cluster.coordinator.Cluster` lives only as long as the
process that created it (it holds the worker control sockets), so the
CLI's ``up`` command spawns *this* module as a detached daemon. The
daemon brings the cluster up, records its own control port in
``<state>/state.json``, then serves one framed-JSON request per client
connection: later ``repro cluster run/collect/status/down`` invocations
read the state file, dial the port, and proxy their command.

The state directory is the handle: one directory == one running
cluster. ``down`` tears the cluster down (optionally via the SIGTERM
drain path, shipping final spools into a store first), removes the
state file, and exits the daemon.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys

from repro.cluster.coordinator import Cluster
from repro.cluster.shipping import FrameChannel
from repro.errors import TransportError

STATE_FILE = "state.json"


def state_path(state_dir: str) -> str:
    return os.path.join(state_dir, STATE_FILE)


def read_state(state_dir: str) -> dict:
    path = state_path(state_dir)
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise SystemExit(f"no cluster state at {path} (is the cluster up?)")


def request(state_dir: str, message: dict, timeout: float = 600.0) -> dict:
    """One round-trip to the service daemon named by ``state_dir``."""
    state = read_state(state_dir)
    sock = socket.create_connection(("127.0.0.1", state["port"]), timeout=10.0)
    channel = FrameChannel(sock)
    try:
        channel.send_json(message)
        return channel.recv_json(timeout=timeout)
    finally:
        channel.close()


class ClusterService:
    def __init__(self, state_dir: str, workers: int, plane: str):
        self.state_dir = state_dir
        self.cluster = Cluster(workers, plane=plane, spool_root=state_dir)
        self.plane = plane

    def serve(self) -> int:
        os.makedirs(self.state_dir, exist_ok=True)
        control = socket.create_server(("127.0.0.1", 0))
        port = control.getsockname()[1]
        self.cluster.up()
        with open(state_path(self.state_dir), "w") as handle:
            json.dump(
                {
                    "pid": os.getpid(),
                    "port": port,
                    "workers": self.cluster.workers,
                    "plane": self.plane,
                    "worker_pids": [h.pid for h in self.cluster.handles],
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        try:
            while True:
                sock, _peer = control.accept()
                sock.settimeout(None)
                channel = FrameChannel(sock)
                try:
                    message = channel.recv_json(timeout=30.0)
                    stop = self._handle(channel, message)
                except TransportError:
                    continue
                finally:
                    channel.close()
                if stop:
                    return 0
        finally:
            control.close()
            try:
                os.unlink(state_path(self.state_dir))
            except OSError:
                pass

    def _handle(self, channel: FrameChannel, message: dict) -> bool:
        """Serve one request; True means the daemon should exit."""
        kind = message.get("type")
        try:
            if kind == "status":
                alive = self.cluster.poll()
                channel.send_json(
                    {
                        "ok": True,
                        "workers": self.cluster.workers,
                        "plane": self.plane,
                        "alive": {str(i): up for i, up in alive.items()},
                        "buffered": {
                            str(h.index): h.last_buffered
                            for h in self.cluster.handles
                        },
                    }
                )
            elif kind == "run-calls":
                replies = self.cluster.run_calls(int(message["calls"]))
                channel.send_json(
                    {
                        "ok": True,
                        "errors": sum(int(r.get("errors", 0)) for r in replies),
                        "calls": int(message["calls"]) * len(replies),
                        "workers": len(replies),
                    }
                )
            elif kind == "run-load":
                merged, per_worker = self.cluster.run_load(
                    rate_per_worker=float(message["rate"]),
                    arrivals_per_worker=int(message["arrivals"]),
                    seed=int(message["seed"]),
                    max_inflight=int(message.get("max_inflight", 4096)),
                )
                channel.send_json(
                    {
                        "ok": True,
                        "merged": merged.to_json(),
                        "per_worker": [r.to_json() for r in per_worker],
                    }
                )
            elif kind == "collect":
                from repro.store import open_store

                backend = open_store(
                    message["database"], backend=message.get("backend")
                )
                try:
                    inserted = self.cluster.collect(
                        backend,
                        message["run_id"],
                        description=message.get("description", ""),
                    )
                finally:
                    backend.close()
                channel.send_json({"ok": True, "records": inserted})
            elif kind == "down":
                if message.get("drain_database"):
                    from repro.store import open_store

                    backend = open_store(
                        message["drain_database"],
                        backend=message.get("backend"),
                    )
                    try:
                        inserted = self.cluster.drain(
                            backend, run_id=message.get("run_id", "drain")
                        )
                    finally:
                        backend.close()
                    channel.send_json({"ok": True, "records": inserted})
                else:
                    self.cluster.down()
                    channel.send_json({"ok": True})
                return True
            else:
                channel.send_json({"ok": False, "error": f"unknown: {kind!r}"})
        except Exception as exc:  # surfaced to the CLI client, not lost
            try:
                channel.send_json({"ok": False, "error": str(exc)})
            except TransportError:
                pass
        return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="repro cluster service daemon")
    parser.add_argument("--state", required=True)
    parser.add_argument("--workers", type=int, required=True)
    parser.add_argument("--plane", choices=("identity", "load"), default="identity")
    args = parser.parse_args(argv)
    return ClusterService(args.state, args.workers, args.plane).serve()


if __name__ == "__main__":
    sys.exit(main())
