"""Real-socket TCP transport behind the in-memory network seam.

Every prior layer — the threaded :class:`~repro.orb.channel.MuxChannel`,
the :class:`~repro.orb.aio.channel.AsyncMuxChannel`, the ORB's reader
loops — talks to a *message-oriented* connection: one ``send`` arrives
as exactly one ``recv``. TCP is a byte stream, so the socket transport
re-creates message boundaries with the PR-9 length-prefixed framing
(:func:`~repro.orb.aio.framing.frame_message` on the way out, an
incremental :class:`~repro.orb.aio.framing.StreamFrameParser` on the way
in). The asyncio plane's own stream protocol — the
``ASYNC_STREAM_PRELUDE`` handshake followed by length-framed GIOP — then
rides *inside* these transport messages unchanged, which is exactly why
the existing fragmentation property suite applies to this transport
verbatim: the same parser re-slices both layers.

:class:`SocketTransport` duck-types :class:`repro.platform.network.Network`
(``listen`` / ``unlisten`` / ``connect``), so an :class:`~repro.orb.Orb`
binds to it with zero changes. Addresses stay symbolic process names;
an endpoint map published by the cluster coordinator resolves them to
``(host, port)`` pairs, letting ORBs in different OS processes find each
other.

Connection lifecycle mirrors the in-memory semantics the channels pin
down:

- peer ``close`` (or process death — FIN, RST, kill -9) surfaces as a
  ``None`` sentinel in the inbox: the blocked ``recv`` raises
  :class:`~repro.errors.TransportError` and marks the connection closed,
  like TCP after FIN;
- ``send`` on a closed/reset connection raises ``TransportError``;
- a corrupt length prefix is stream desynchronization: the reader tears
  the link down rather than guessing at the next frame boundary.

Fault injection is out of scope by design: deterministic fault plans
belong to the in-memory :class:`~repro.faults.FaultyNetwork`; a real
socket's faults are the real network's.
"""

from __future__ import annotations

import json
import queue
import socket
import threading

from repro.errors import TransportError
from repro.orb.aio.framing import StreamFrameParser, frame_message

#: recv() buffer size for the per-connection reader threads.
_RECV_CHUNK = 1 << 16
#: Bound on connect/handshake blocking; data-plane reads are unbounded.
_HANDSHAKE_TIMEOUT_S = 10.0


class SocketConnection:
    """One framed TCP socket presented with message semantics.

    A dedicated reader thread drains the socket, re-slices the byte
    stream into transport messages with a :class:`StreamFrameParser`,
    and feeds a ``SimpleQueue`` inbox — so ``recv`` has exactly the
    blocking/timeout/close contract of the in-memory
    :class:`~repro.platform.network.Connection`.
    """

    def __init__(
        self,
        sock: socket.socket,
        local_label: str,
        peer_label: str,
        parser: StreamFrameParser | None = None,
        ready: tuple[bytes, ...] = (),
    ):
        self.local_label = local_label
        self.peer_label = peer_label
        self._sock = sock
        self._inbox: queue.SimpleQueue[bytes | None] = queue.SimpleQueue()
        self._parser = parser if parser is not None else StreamFrameParser()
        self._closed = False
        self._send_lock = threading.Lock()
        # Frames the accept-side handshake over-read past the hello.
        for payload in ready:
            self._inbox.put(payload)
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"sockconn-{local_label}<-{peer_label}",
            daemon=True,
        )
        self._reader.start()

    # -- data plane -----------------------------------------------------

    def send(self, payload: bytes, sender_host=None) -> None:
        """Frame and send one message (``sender_host`` kept for seam
        compatibility; real links charge real latency)."""
        if self._closed:
            raise TransportError(
                f"connection {self.local_label}->{self.peer_label} is closed"
            )
        data = frame_message(payload)
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except OSError as exc:
            self._closed = True
            raise TransportError(
                f"connection {self.local_label}->{self.peer_label} is closed"
            ) from exc

    def recv(self, timeout: float | None = None) -> bytes:
        """Block until a whole message arrives; raise on close or timeout."""
        try:
            payload = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise TransportError(
                f"recv timed out on {self.local_label}<-{self.peer_label}"
            ) from None
        if payload is None:
            self._closed = True
            # Keep later receivers failing too: unlike the in-memory
            # transport there is no live peer left to re-signal, so the
            # sentinel is re-armed for any other thread still blocked.
            self._inbox.put(None)
            raise TransportError(
                f"connection {self.local_label} closed by peer"
            )
        return payload

    def close(self) -> None:
        """Close both directions; local and remote receivers unblock."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._inbox.put(None)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- reader thread --------------------------------------------------

    def _read_loop(self) -> None:
        sock = self._sock
        parser = self._parser
        inbox = self._inbox
        while True:
            try:
                chunk = sock.recv(_RECV_CHUNK)
            except OSError:
                break  # reset, or local close() shut the socket down
            if not chunk:
                break  # FIN / half-close: peer is gone for good
            try:
                frames = parser.feed(chunk)
            except Exception:
                # Corrupt length prefix: no next frame boundary exists.
                break
            for payload in frames:
                inbox.put(payload)
        inbox.put(None)


class SocketTransport:
    """TCP network for ORB endpoints in separate OS processes.

    Duck-types the :class:`~repro.platform.network.Network` seam:
    ``listen(address, on_connect)`` binds a real listening socket (an
    ephemeral loopback port by default) and ``connect(client_label,
    address)`` resolves ``address`` through the endpoint map and opens a
    framed TCP connection, announcing the client label in a one-frame
    hello so the server side can label the link exactly as the in-memory
    network does.
    """

    def __init__(self, bind_host: str = "127.0.0.1"):
        self._bind_host = bind_host
        self._lock = threading.Lock()
        #: address -> (listening socket, accept thread) for local listeners.
        self._listeners: dict[str, tuple[socket.socket, threading.Thread]] = {}
        #: address -> (host, port); local listeners plus the published map.
        self._endpoints: dict[str, tuple[str, int]] = {}
        self._connections: list[SocketConnection] = []
        self._closed = False

    # -- seam: server side ----------------------------------------------

    def listen(self, address: str, on_connect) -> None:
        """Bind a listening socket for ``address`` on an ephemeral port."""
        with self._lock:
            if self._closed:
                raise TransportError("socket transport is closed")
            if address in self._listeners:
                raise TransportError(f"address already in use: {address}")
        server = socket.create_server((self._bind_host, 0))
        thread = threading.Thread(
            target=self._accept_loop,
            args=(server, address, on_connect),
            name=f"sock-listen-{address}",
            daemon=True,
        )
        with self._lock:
            self._listeners[address] = (server, thread)
            self._endpoints[address] = (self._bind_host, server.getsockname()[1])
        thread.start()

    def unlisten(self, address: str) -> None:
        with self._lock:
            entry = self._listeners.pop(address, None)
            if entry is not None:
                self._endpoints.pop(address, None)
        if entry is not None:
            server, _thread = entry
            try:
                server.close()
            except OSError:
                pass

    def _accept_loop(self, server: socket.socket, address: str, on_connect) -> None:
        while True:
            try:
                sock, _peer = server.accept()
            except OSError:
                return  # unlisten()/close() closed the listening socket
            threading.Thread(
                target=self._handshake,
                args=(sock, address, on_connect),
                name=f"sock-accept-{address}",
                daemon=True,
            ).start()

    def _handshake(self, sock: socket.socket, address: str, on_connect) -> None:
        """Read the client's hello frame, then hand the link to the ORB.

        The hello may share TCP segments with the frames the client sent
        right after it; whatever the handshake over-reads is preserved —
        the parser (with its buffered tail) and any already-complete
        frames ride into the :class:`SocketConnection`.
        """
        parser = StreamFrameParser()
        frames: list[bytes] = []
        sock.settimeout(_HANDSHAKE_TIMEOUT_S)
        try:
            while not frames:
                chunk = sock.recv(_RECV_CHUNK)
                if not chunk:
                    sock.close()
                    return
                frames = parser.feed(chunk)
            hello = json.loads(frames[0].decode("utf-8"))
            client_label = str(hello["client_label"])
        except Exception:
            try:
                sock.close()
            except OSError:
                pass
            return
        sock.settimeout(None)
        _nodelay(sock)
        conn = SocketConnection(
            sock, address, client_label, parser=parser, ready=tuple(frames[1:])
        )
        with self._lock:
            self._connections.append(conn)
        on_connect(conn)

    # -- seam: client side ----------------------------------------------

    def connect(self, client_label: str, address: str) -> SocketConnection:
        """Open a framed connection from ``client_label`` to ``address``."""
        with self._lock:
            if self._closed:
                raise TransportError("socket transport is closed")
            endpoint = self._endpoints.get(address)
        if endpoint is None:
            raise TransportError(f"no listener at {address}")
        try:
            sock = socket.create_connection(endpoint, timeout=_HANDSHAKE_TIMEOUT_S)
        except OSError as exc:
            raise TransportError(f"no listener at {address}: {exc}") from exc
        sock.settimeout(None)
        _nodelay(sock)
        try:
            sock.sendall(
                frame_message(
                    json.dumps({"client_label": client_label}).encode("utf-8")
                )
            )
        except OSError as exc:
            try:
                sock.close()
            except OSError:
                pass
            raise TransportError(f"no listener at {address}: {exc}") from exc
        conn = SocketConnection(sock, client_label, address)
        with self._lock:
            self._connections.append(conn)
        return conn

    # -- endpoint map ----------------------------------------------------

    def local_endpoints(self) -> dict[str, tuple[str, int]]:
        """The ``address -> (host, port)`` pairs this transport serves."""
        with self._lock:
            return {
                address: self._endpoints[address] for address in self._listeners
            }

    def set_endpoints(self, endpoints: dict[str, tuple[str, int]]) -> None:
        """Merge the coordinator-published map of remote endpoints."""
        with self._lock:
            for address, (host, port) in endpoints.items():
                if address not in self._listeners:
                    self._endpoints[address] = (str(host), int(port))

    # -- seam: latency hooks (real links have real latency) ---------------

    def set_default_latency(self, latency_ns: int) -> None:  # pragma: no cover
        raise TransportError("socket transport does not simulate link latency")

    def set_latency(self, *_args) -> None:  # pragma: no cover
        raise TransportError("socket transport does not simulate link latency")

    def apply_latency(self, *_args) -> None:
        """No-op: the kernel's TCP stack charges the real latency."""

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        """Close every listener and connection (worker shutdown path)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            listeners = list(self._listeners.values())
            self._listeners.clear()
            connections = list(self._connections)
            self._connections.clear()
        for server, _thread in listeners:
            try:
                server.close()
            except OSError:
                pass
        for conn in connections:
            conn.close()


def _nodelay(sock: socket.socket) -> None:
    """Disable Nagle: the data plane sends many small framed messages and
    the channels already coalesce where it matters."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - platform without TCP_NODELAY
        pass
