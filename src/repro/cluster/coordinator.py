"""The cluster coordinator: spawns workers, wires the ring, runs loads,
and re-ingests shipped spools into the central store.

The launcher's lifecycle (``repro cluster up/run/down``)::

    up:    spawn W ``python -m repro.cluster.worker`` processes
           accept W control connections, gather hellos
           broadcast the endpoint/ref map, await readies
    run:   broadcast a command (monitored calls or an open-loop load
           step), gather per-worker results in ring order
    collect: per worker, trigger collect-and-ship and re-ingest the
           spool into the central store as one merged run
    down:  graceful = SIGTERM (workers drain and ship final spools),
           otherwise a shutdown command; then reap

Heartbeats arrive on the same control connections; they are consumed
opportunistically whenever the coordinator waits for a reply, keeping
``last_buffered`` fresh — the basis for charging an abruptly dead
worker's records to ``records_uncollected`` so cluster-wide loss
accounting balances even under kill -9.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys

from repro.cluster.loadgen import LoadResult, merge_results
from repro.cluster.shipping import ChannelTimeout, FrameChannel
from repro.cluster.workload import driver_name, server_name
from repro.errors import TransportError
from repro.store.ingest import Shipment, ingest_shipments, receive_shipment


def _src_pythonpath() -> str:
    """PYTHONPATH entry that makes ``import repro`` resolve to this tree."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class WorkerHandle:
    """Coordinator-side state for one worker process."""

    def __init__(self, index: int, process: subprocess.Popen):
        self.index = index
        self.process = process
        self.channel: FrameChannel | None = None
        self.pid: int | None = None
        self.endpoints: dict[str, tuple[str, int]] = {}
        self.refs: dict[str, str] = {}
        #: Last log-buffer occupancy the worker reported (heartbeat or
        #: command reply) — the kill -9 loss-accounting source.
        self.last_buffered: dict[str, int] = {}
        self.alive = True

    @property
    def process_names(self) -> list[str]:
        return [driver_name(self.index), server_name(self.index)]

    def expect(self, *types: str, timeout: float = 60.0) -> dict:
        """Receive until a message of one of ``types`` arrives.

        Heartbeats (and any stale replies) update ``last_buffered`` and
        are skipped. EOF marks the worker dead and raises
        :class:`TransportError`.
        """
        try:
            while True:
                message = self.channel.recv_json(timeout=timeout)
                if "buffered" in message:
                    self.last_buffered = dict(message["buffered"])
                if message.get("type") in types:
                    return message
        except ChannelTimeout:
            raise
        except TransportError:
            self.alive = False
            raise

    def poll(self) -> None:
        """Drain any queued heartbeats without blocking."""
        if not self.alive:
            return
        try:
            while True:
                message = self.channel.recv_json(timeout=0.01)
                if "buffered" in message:
                    self.last_buffered = dict(message["buffered"])
        except ChannelTimeout:
            return
        except TransportError:
            self.alive = False

    def send(self, message: dict) -> None:
        self.channel.send_json(message)


class Cluster:
    """Process-per-host launcher and control plane."""

    def __init__(
        self,
        workers: int,
        plane: str = "identity",
        spool_root: str | None = None,
        python: str | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.plane = plane
        self.spool_root = spool_root
        self.python = python or sys.executable
        self.handles: list[WorkerHandle] = []
        self._control: socket.socket | None = None
        self._run_seq = 0

    # -- lifecycle -------------------------------------------------------

    def up(self, timeout: float = 60.0) -> None:
        """Spawn the workers and wire the ring; returns when all ready."""
        self._control = socket.create_server(("127.0.0.1", 0))
        self._control.settimeout(timeout)
        port = self._control.getsockname()[1]
        env = dict(os.environ)
        src = _src_pythonpath()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        for index in range(self.workers):
            argv = [
                self.python,
                "-m",
                "repro.cluster.worker",
                "--index",
                str(index),
                "--workers",
                str(self.workers),
                "--connect",
                f"127.0.0.1:{port}",
                "--plane",
                self.plane,
            ]
            if self.spool_root:
                argv += ["--spool-root", self.spool_root]
            self.handles.append(
                WorkerHandle(
                    index,
                    subprocess.Popen(argv, env=env, stdin=subprocess.DEVNULL),
                )
            )
        # Accept control connections; hellos identify which worker dialed.
        pending = self.workers
        by_index = {handle.index: handle for handle in self.handles}
        while pending:
            sock, _peer = self._control.accept()
            sock.settimeout(None)
            channel = FrameChannel(sock)
            hello = channel.recv_json(timeout=timeout)
            if hello.get("type") != "hello":
                channel.close()
                continue
            handle = by_index[int(hello["index"])]
            handle.channel = channel
            handle.pid = int(hello["pid"])
            handle.endpoints = {
                address: (host, int(p))
                for address, (host, p) in hello["endpoints"].items()
            }
            handle.refs = dict(hello["refs"])
            pending -= 1
        endpoints: dict[str, list] = {}
        refs: dict[str, str] = {}
        for handle in self.handles:
            for address, (host, p) in handle.endpoints.items():
                endpoints[address] = [host, p]
            refs.update(handle.refs)
        for handle in self.handles:
            handle.send({"type": "map", "endpoints": endpoints, "refs": refs})
        for handle in self.handles:
            handle.expect("ready", timeout=timeout)

    def down(self, graceful: bool = False, timeout: float = 30.0) -> None:
        """Stop the workers. ``graceful=False`` sends the shutdown
        command; use :meth:`drain` for the SIGTERM ship-final-spool path."""
        for handle in self.handles:
            if not handle.alive:
                continue
            try:
                handle.send({"type": "shutdown"})
                handle.expect("bye", timeout=timeout)
            except TransportError:
                pass
        self._reap(timeout, force=not graceful)

    def _reap(self, timeout: float, force: bool) -> None:
        for handle in self.handles:
            try:
                handle.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                if force:
                    handle.process.kill()
                    handle.process.wait(timeout=timeout)
        for handle in self.handles:
            if handle.channel is not None:
                handle.channel.close()
        if self._control is not None:
            self._control.close()
            self._control = None

    def kill(self, index: int) -> None:
        """SIGKILL one worker (the failure-injection path for tests)."""
        handle = self.handles[index]
        handle.process.kill()
        handle.process.wait()
        handle.alive = False

    # -- commands --------------------------------------------------------

    def _next_seq(self) -> int:
        self._run_seq += 1
        return self._run_seq

    def run_calls(self, calls: int, timeout: float = 120.0) -> list[dict]:
        """Drive ``calls`` monitored ring calls on every live worker."""
        seq = self._next_seq()
        live = [h for h in self.handles if h.alive]
        for handle in live:
            handle.send({"type": "run-calls", "calls": calls, "run_seq": seq})
        replies = []
        for handle in live:
            reply = handle.expect("done", timeout=timeout)
            if reply.get("run_seq") != seq:
                raise TransportError(
                    f"worker {handle.index}: stale done "
                    f"(seq {reply.get('run_seq')} != {seq})"
                )
            replies.append(reply)
        return replies

    def run_load(
        self,
        rate_per_worker: float,
        arrivals_per_worker: int,
        seed: int,
        max_inflight: int = 4096,
        timeout: float = 600.0,
    ) -> tuple[LoadResult, list[LoadResult]]:
        """One open-loop load step on every live worker, concurrently.

        Returns ``(merged, per_worker)`` results; offered load is
        ``rate_per_worker * live_workers``.
        """
        seq = self._next_seq()
        live = [h for h in self.handles if h.alive]
        for handle in live:
            handle.send(
                {
                    "type": "run-load",
                    "rate": rate_per_worker,
                    "arrivals": arrivals_per_worker,
                    "seed": seed + handle.index,
                    "max_inflight": max_inflight,
                    "run_seq": seq,
                }
            )
        results = []
        for handle in live:
            reply = handle.expect("done", timeout=timeout)
            results.append(LoadResult.from_json(reply["result"]))
        return merge_results(results), results

    # -- collection ------------------------------------------------------

    def collect(
        self,
        backend,
        run_id: str,
        description: str = "",
        timeout: float = 120.0,
        expect_command: bool = True,
    ) -> int:
        """Collect every worker's spool into ``backend`` as one run.

        Live workers are collected in ring order (matching the
        single-process reference's process order); dead workers are
        charged to ``failed_drains`` / ``records_uncollected`` from
        their last heartbeat, keeping the cluster-wide balance
        ``stored + lost + uncollected == produced``.

        ``expect_command=False`` skips sending the collect command and
        just receives shipments the workers initiate themselves (the
        SIGTERM drain path).

        Returns the number of records ingested.
        """
        shipments: list[Shipment] = []
        extra_loss: list[dict] = []
        dead: list[str] = []
        for handle in self.handles:
            if not handle.alive:
                self._charge_dead(handle, extra_loss, dead)
                continue
            try:
                if expect_command:
                    handle.send({"type": "collect", "run_id": run_id})
                begin = handle.expect("ship-begin", timeout=timeout)
                shipment = receive_shipment(handle.channel, begin)
                shipment.run_id = run_id
                shipments.append(shipment)
            except TransportError:
                self._charge_dead(handle, extra_loss, dead)
        return ingest_shipments(
            backend,
            run_id,
            shipments,
            description=description,
            extra_loss=extra_loss,
            dead_processes=dead,
        )

    def drain(self, backend, run_id: str = "drain", timeout: float = 60.0) -> int:
        """Graceful teardown: SIGTERM every worker, ingest the final
        spools they ship on their way out, then reap."""
        import signal as _signal

        for handle in self.handles:
            if handle.alive:
                try:
                    handle.process.send_signal(_signal.SIGTERM)
                except OSError:
                    handle.alive = False
        inserted = self.collect(
            backend,
            run_id,
            description="graceful drain",
            timeout=timeout,
            expect_command=False,
        )
        for handle in self.handles:
            if handle.alive:
                try:
                    handle.expect("drain-complete", timeout=timeout)
                except TransportError:
                    pass
        self._reap(timeout, force=True)
        return inserted

    @staticmethod
    def _charge_dead(
        handle: WorkerHandle, extra_loss: list[dict], dead: list[str]
    ) -> None:
        uncollected = sum(handle.last_buffered.values())
        extra_loss.append(
            {
                "failed_drains": handle.process_names,
                "records_uncollected": uncollected,
            }
        )
        dead.extend(handle.process_names)

    # -- liveness --------------------------------------------------------

    def poll(self) -> dict[int, bool]:
        """Non-blocking liveness sweep: drain heartbeats, check exits."""
        status = {}
        for handle in self.handles:
            if handle.alive and handle.process.poll() is not None:
                handle.alive = False
            handle.poll()
            status[handle.index] = handle.alive
        return status

    def __enter__(self) -> "Cluster":
        self.up()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        try:
            self.down()
        except Exception:
            if exc_type is None:
                raise
