"""The ``cluster`` scenario workload: a real mini-cluster inside a suite
cell.

Unlike every other workload adapter, this one does not build on the
scenario's in-memory (possibly faulty) network — it launches an actual
:class:`~repro.cluster.Cluster` of worker OS processes over TCP, drives
the seeded ring workload, collects via sharded spools into a private
central store, and then *re-presents* the collected records as ghost
processes so the executor's standard collection/invariant machinery
applies unchanged. Grid validation
(:func:`repro.scenarios.config._validate_cell`) enforces the resulting
contract: fault-free cells only (seeded fault plans cannot inject into
kernel sockets), no background hooks, mux/per-request policy.

Determinism still holds — the ring workload's records depend only on
worker index and call count (see :mod:`repro.cluster.workload`) — so
``deterministic_accounting`` re-runs the whole mini-cluster and gets the
same accounting byte for byte.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.cluster.coordinator import Cluster
from repro.platform.process import LocalLogBuffer
from repro.scenarios.workloads import WorkloadHarness
from repro.store import SegmentStore

_RUN_ID = "cluster-scenario"


class _GhostMode:
    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value


class _GhostMonitor:
    __slots__ = ("config",)

    def __init__(self, mode: str):
        self.config = type("_Cfg", (), {})()
        self.config.mode = _GhostMode(mode)


class _GhostProcess:
    """A collected worker process, re-presented for the executor.

    Carries exactly the attributes the executor's collection path reads:
    ``name``, ``log_buffer`` (pre-filled with the shipped records, in
    the worker's arrival order), and ``monitor`` (for the run's
    monitor-mode string). ``log_buffer`` stays assignable so
    ``FaultInjector.lossy_delivery`` can wrap it like any process's.
    """

    def __init__(self, name: str, records: list, mode: str):
        self.name = name
        self.log_buffer = LocalLogBuffer()
        for record in records:
            self.log_buffer.append(record)
        self.monitor = _GhostMonitor(mode)

    def shutdown(self) -> None:
        pass


def run_cluster_scenario(ctx) -> WorkloadHarness:
    """Workload adapter: ``(ScenarioContext) -> WorkloadHarness``."""
    params = ctx.spec.workload.params
    workers = int(params.get("workers", 2))
    calls = int(params.get("calls", 4))

    workdir = tempfile.mkdtemp(prefix="repro-cluster-scn-")
    errors = 0
    results: list = []
    try:
        store = SegmentStore(os.path.join(workdir, "central"), auto_compact=0)
        try:
            cluster = Cluster(workers, plane="identity", spool_root=workdir)
            cluster.up()
            try:
                for reply in cluster.run_calls(calls):
                    errors += int(reply.get("errors", 0))
                    results.extend(reply.get("results", []))
                cluster.collect(store, _RUN_ID, description=ctx.spec.scenario_id)
            finally:
                cluster.down()
            meta = next(m for m in store.runs() if m.run_id == _RUN_ID)
            process_names = list(meta.extra.get("processes", []))
            by_process: dict[str, list] = {name: [] for name in process_names}
            for record in store.all_records(_RUN_ID):
                by_process.setdefault(record.process, []).append(record)
            mode = meta.monitor_mode or "latency"
            ghosts = [
                _GhostProcess(name, by_process.get(name, []), mode)
                for name in process_names
            ]
        finally:
            store.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return WorkloadHarness(ghosts, errors, results, lambda: None)
