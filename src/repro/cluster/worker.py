"""One cluster worker: a real OS process hosting ORB endpoints.

Launched by the coordinator as ``python -m repro.cluster.worker`` with
its ring index; the worker

1. dials the coordinator's control port and says hello (its local
   data-plane endpoints plus its server's object-ref URL),
2. receives the cluster-wide endpoint/ref map, wires its driver to its
   ring neighbour over the :class:`~repro.cluster.transport.SocketTransport`,
3. reports ready and starts a heartbeat thread (liveness + current
   log-buffer occupancy, which is what lets the coordinator charge an
   abruptly killed worker's records to ``records_uncollected``),
4. serves framed-JSON commands — drive a monitored call sequence, run
   an open-loop load step, collect-and-ship its local spool, shut down,
5. on SIGTERM, drains gracefully: stops serving, quiesces, ships a
   final spool under ``drain-<index>``, and exits 0.

All sends to the coordinator go through one lock so heartbeats can
never interleave with a multi-frame spool shipment.
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import socket
import sys
import tempfile
import threading

from repro.cluster.loadgen import open_loop
from repro.cluster.shipping import ChannelTimeout, FrameChannel, ship_run
from repro.cluster.transport import SocketTransport
from repro.cluster.workload import (
    build_load_deployment,
    build_worker_deployment,
    drive_calls,
    server_name,
)
from repro.collector.sharded import ShardedSpoolCollector
from repro.errors import TransportError
from repro.scenarios.workloads import quiesce

HEARTBEAT_INTERVAL_S = 0.5
#: Command-poll period; also bounds SIGTERM-to-drain latency.
POLL_TIMEOUT_S = 0.2


class Worker:
    def __init__(
        self,
        index: int,
        workers: int,
        coordinator: tuple[str, int],
        plane: str = "identity",
        spool_root: str | None = None,
    ):
        self.index = index
        self.workers = workers
        self.coordinator = coordinator
        self.plane = plane
        self.spool_root = spool_root
        self.channel: FrameChannel | None = None
        self.deployment = None
        self.transport = SocketTransport()
        self._channel_lock = threading.Lock()
        self._drain_requested = threading.Event()
        self._stopped = threading.Event()

    # -- lifecycle -------------------------------------------------------

    def run(self) -> int:
        signal.signal(signal.SIGTERM, self._on_sigterm)
        sock = socket.create_connection(self.coordinator, timeout=10.0)
        sock.settimeout(None)
        self.channel = FrameChannel(sock)
        if self.plane == "load":
            self.deployment = build_load_deployment(
                self.index, self.workers, self.transport
            )
        else:
            self.deployment = build_worker_deployment(
                self.index, self.workers, self.transport
            )
        self._send(
            {
                "type": "hello",
                "index": self.index,
                "pid": os.getpid(),
                "endpoints": {
                    address: list(endpoint)
                    for address, endpoint in self.transport.local_endpoints().items()
                },
                "refs": {server_name(self.index): self.deployment.local_ref_url},
            }
        )
        mapping = self.channel.recv_json(timeout=30.0)
        if mapping.get("type") != "map":
            raise TransportError(f"expected map, got {mapping.get('type')!r}")
        self.transport.set_endpoints(
            {
                address: (host, int(port))
                for address, (host, port) in mapping["endpoints"].items()
            }
        )
        self.deployment.connect(mapping["refs"])
        self._send({"type": "ready", "index": self.index})
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="cluster-heartbeat", daemon=True
        )
        heartbeat.start()
        try:
            return self._serve()
        finally:
            self._stopped.set()
            self.transport.close()

    def _serve(self) -> int:
        while True:
            if self._drain_requested.is_set():
                self._drain()
                return 0
            try:
                message = self.channel.recv_json(timeout=POLL_TIMEOUT_S)
            except ChannelTimeout:
                continue
            except TransportError:
                # Coordinator died; nothing to ship to. Exit non-zero so
                # a supervising launcher can tell this from a clean stop.
                return 1
            kind = message.get("type")
            if kind == "run-calls":
                self._run_calls(message)
            elif kind == "run-load":
                self._run_load(message)
            elif kind == "collect":
                self._collect(message["run_id"])
            elif kind == "shutdown":
                self._send({"type": "bye", "index": self.index})
                return 0
            # Unknown messages are ignored: forward protocol compatibility.

    def _on_sigterm(self, _signum, _frame) -> None:
        self._drain_requested.set()

    # -- command handlers ------------------------------------------------

    def _buffered(self) -> dict[str, int]:
        return {
            process.name: len(process.log_buffer)
            for process in self.deployment.processes
        }

    def _run_calls(self, message: dict) -> None:
        errors, results = drive_calls(
            self.deployment, int(message["calls"])
        )
        quiesce(self.deployment.processes)
        self._send(
            {
                "type": "done",
                "index": self.index,
                "run_seq": message.get("run_seq"),
                "errors": errors,
                "results": results,
                "buffered": self._buffered(),
            }
        )

    def _run_load(self, message: dict) -> None:
        import asyncio

        stub = self.deployment.stub

        async def _call(i):
            await stub.ping(i)

        result = asyncio.run(
            open_loop(
                _call,
                rate_per_s=float(message["rate"]),
                arrivals=int(message["arrivals"]),
                seed=int(message["seed"]),
                max_inflight=int(message.get("max_inflight", 4096)),
            )
        )
        self._send(
            {
                "type": "done",
                "index": self.index,
                "run_seq": message.get("run_seq"),
                "result": result.to_json(),
                "buffered": self._buffered(),
            }
        )

    def _collect(self, run_id: str) -> None:
        quiesce(self.deployment.processes)
        spool = tempfile.mkdtemp(
            prefix=f"repro-spool-{self.index:02d}-", dir=self.spool_root
        )
        try:
            shard = ShardedSpoolCollector(spool)
            shard.collect(self.deployment.processes, run_id=run_id)
            manifest = shard.manifest(run_id)
            shard.seal()
            with self._channel_lock:
                ship_run(
                    self.channel,
                    spool,
                    run_id,
                    loss=manifest["loss"],
                    processes=manifest["processes"],
                    monitor_mode=manifest["monitor_mode"],
                    record_count=manifest["record_count"],
                    schema_version=manifest["schema_version"],
                )
        finally:
            shutil.rmtree(spool, ignore_errors=True)

    def _drain(self) -> None:
        """SIGTERM path: quiesce, ship whatever is buffered, exit clean."""
        self._collect(f"drain-{self.index:02d}")
        self._send({"type": "drain-complete", "index": self.index})

    # -- heartbeats ------------------------------------------------------

    def _send(self, message: dict) -> None:
        with self._channel_lock:
            self.channel.send_json(message)

    def _heartbeat_loop(self) -> None:
        while not self._stopped.wait(HEARTBEAT_INTERVAL_S):
            try:
                self._send(
                    {
                        "type": "heartbeat",
                        "index": self.index,
                        "buffered": self._buffered(),
                    }
                )
            except TransportError:
                return  # coordinator gone; the serve loop will notice


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="repro cluster worker")
    parser.add_argument("--index", type=int, required=True)
    parser.add_argument("--workers", type=int, required=True)
    parser.add_argument(
        "--connect", required=True, help="coordinator control address host:port"
    )
    parser.add_argument(
        "--plane", choices=("identity", "load"), default="identity"
    )
    parser.add_argument("--spool-root", default=None)
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    worker = Worker(
        index=args.index,
        workers=args.workers,
        coordinator=(host, int(port)),
        plane=args.plane,
        spool_root=args.spool_root,
    )
    return worker.run()


if __name__ == "__main__":
    sys.exit(main())
