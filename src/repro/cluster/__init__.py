"""repro.cluster — real-socket, multi-process deployment.

The paper's Section-3 architecture run for real: ORB endpoints in
separate OS processes over a framed TCP transport
(:class:`SocketTransport`, the in-memory network seam over actual
sockets), one sharded collector per host spooling locally
(:class:`~repro.collector.sharded.ShardedSpoolCollector`), sealed
``.seg`` spools shipped to a central store
(:mod:`repro.cluster.shipping` → :mod:`repro.store.ingest`) where the
unchanged analyzer runs — and an open-loop load generator
(:mod:`repro.cluster.loadgen`) that sweeps offered load across worker
processes to find the saturation knee.

The deployment topology is provably transparent:
:mod:`repro.cluster.identity` shows a seeded cluster run's DSCG/CCSG
output byte-identical to the same workload in one interpreter.
"""

from repro.cluster.coordinator import Cluster, WorkerHandle
from repro.cluster.loadgen import (
    LatencyHistogram,
    LoadResult,
    find_knee,
    merge_results,
    modeled_users,
    open_loop,
)
from repro.cluster.shipping import ChannelTimeout, FrameChannel, ship_run
from repro.cluster.transport import SocketConnection, SocketTransport
from repro.cluster.workload import (
    CLUSTER_IDL,
    WorkerDeployment,
    build_load_deployment,
    build_reference_deployments,
    build_worker_deployment,
    drive_calls,
)

__all__ = [
    "CLUSTER_IDL",
    "ChannelTimeout",
    "Cluster",
    "FrameChannel",
    "LatencyHistogram",
    "LoadResult",
    "SocketConnection",
    "SocketTransport",
    "WorkerDeployment",
    "WorkerHandle",
    "build_load_deployment",
    "build_reference_deployments",
    "build_worker_deployment",
    "drive_calls",
    "find_knee",
    "merge_results",
    "modeled_users",
    "open_loop",
    "ship_run",
]
