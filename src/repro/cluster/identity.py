"""Cluster-vs-single-process bit-identity verification.

The cluster's correctness claim is not "roughly the same picture" — it
is that running the seeded ring workload across real OS processes, with
per-host sharded collection and spool shipping, produces **byte-for-byte
the same DSCG JSON and CCSG XML** as running every endpoint inside one
interpreter and collecting directly. Global causality capture must not
depend on where the components ran (paper Section 3: logs are merged at
quiescence; nothing in the analysis consumes machine-local identity).

Both passes run the same builders (:mod:`repro.cluster.workload`); this
module executes them, reduces each store to a canonical JSON document
(DSCG, CCSG, loss accounting, process list, monitor modes), and compares.
``repro cluster identity`` writes the two documents for CI to ``diff``.
"""

from __future__ import annotations

import json
import os

from repro.analysis import (
    CpuAnalysis,
    build_ccsg,
    dscg_to_json,
    reconstruct,
    render_ccsg_xml,
)
from repro.cluster.coordinator import Cluster
from repro.cluster.workload import build_reference_deployments, drive_calls
from repro.collector import LogCollector
from repro.platform import Network
from repro.scenarios.workloads import quiesce
from repro.store import SegmentStore

#: Fixed run id for both passes, so run-scoped strings (the CCSG XML
#: description) cannot differ for bookkeeping reasons.
IDENTITY_RUN_ID = "cluster-identity"


def summarize_run(backend, run_id: str, workers: int, calls: int) -> dict:
    """Reduce one collected run to the canonical comparison document."""
    dscg = reconstruct(backend, run_id)
    ccsg = build_ccsg(dscg, CpuAnalysis(dscg))
    meta = next(m for m in backend.runs() if m.run_id == run_id)
    return {
        "run_id": run_id,
        "workers": workers,
        "calls_per_worker": calls,
        "records": backend.record_count(run_id),
        "monitor_mode": meta.monitor_mode,
        "processes": meta.extra.get("processes", []),
        "loss": meta.extra.get("loss", {}),
        "dscg_json": dscg_to_json(dscg),
        "ccsg_xml": render_ccsg_xml(ccsg, description=run_id),
    }


def run_cluster_pass(
    workers: int, calls: int, store_path: str, spool_root: str | None = None
) -> dict:
    """The real thing: worker OS processes, TCP data plane, shipped spools."""
    store = SegmentStore(store_path)
    try:
        cluster = Cluster(workers, plane="identity", spool_root=spool_root)
        cluster.up()
        try:
            cluster.run_calls(calls)
            cluster.collect(store, IDENTITY_RUN_ID, description=IDENTITY_RUN_ID)
        finally:
            cluster.down()
        return summarize_run(store, IDENTITY_RUN_ID, workers, calls)
    finally:
        store.close()


def run_reference_pass(workers: int, calls: int, store_path: str) -> dict:
    """The reference: identical builders, one interpreter, direct collection."""
    network = Network()
    deployments = build_reference_deployments(workers, network)
    try:
        for deployment in deployments:
            drive_calls(deployment, calls)
            quiesce(deployment.processes)
        processes = [
            process
            for deployment in deployments
            for process in deployment.processes
        ]
        store = SegmentStore(store_path)
        try:
            LogCollector(backend=store).collect(
                processes, run_id=IDENTITY_RUN_ID, description=IDENTITY_RUN_ID
            )
            return summarize_run(store, IDENTITY_RUN_ID, workers, calls)
        finally:
            store.close()
    finally:
        for deployment in deployments:
            deployment.shutdown()


def compare_documents(cluster_doc: dict, reference_doc: dict) -> dict:
    """Field-by-field identity verdict (all must hold for bit-identity)."""
    checks = {
        key: cluster_doc[key] == reference_doc[key]
        for key in (
            "records",
            "monitor_mode",
            "processes",
            "loss",
            "dscg_json",
            "ccsg_xml",
        )
    }
    checks["identical"] = all(checks.values())
    return checks


def run_identity_check(
    workers: int,
    calls: int,
    workdir: str,
    cluster_output: str | None = None,
    reference_output: str | None = None,
) -> dict:
    """Run both passes under ``workdir`` and compare.

    Returns ``{"checks": ..., "cluster": ..., "reference": ...}``; the
    optional output paths get each pass's canonical JSON document, byte
    comparable with ``diff`` (what the CI job does).
    """
    cluster_doc = run_cluster_pass(
        workers,
        calls,
        os.path.join(workdir, "cluster-store"),
        spool_root=workdir,
    )
    reference_doc = run_reference_pass(
        workers, calls, os.path.join(workdir, "reference-store")
    )
    for path, doc in (
        (cluster_output, cluster_doc),
        (reference_output, reference_doc),
    ):
        if path:
            with open(path, "w") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
                handle.write("\n")
    return {
        "checks": compare_documents(cluster_doc, reference_doc),
        "cluster": cluster_doc,
        "reference": reference_doc,
    }
