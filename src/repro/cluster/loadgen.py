"""Open-loop load generation with seeded arrivals.

Closed-loop drivers (a fixed pool of threads, each issuing the next
call when the previous returns) understate latency at saturation: when
the system slows down, a closed loop slows its *offered* load down with
it, hiding the queueing delay real users would see. The cluster's load
generator is **open-loop**: arrivals follow a seeded Poisson process at
a fixed offered rate, each call's latency is measured from its
*scheduled* arrival time (not from when the generator got around to
sending it — the standard coordinated-omission correction), and
arrivals that find the in-flight cap exhausted are counted as **shed**
rather than silently queued.

Sweeping the offered rate and watching where goodput stops tracking it
gives the saturation knee; at a think time of Z seconds per user, a
sustainable goodput of X calls/s models ``X * Z`` concurrent users
(interactive closed-network law) — that is the "millions of users"
arithmetic ``bench_load_scale`` reports.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

#: Geometric latency buckets: bucket ``i`` holds latencies in
#: ``[BASE * GROWTH**i, BASE * GROWTH**(i+1))`` ns. Fixed boundaries make
#: histograms mergeable across workers by element-wise addition; 1.2x
#: growth bounds percentile error to <20% of the value, plenty for knee
#: detection.
_HIST_BASE_NS = 1_000.0
_HIST_GROWTH = 1.2
_HIST_BUCKETS = 160  # covers ~1us .. ~4800s


def _bucket_index(latency_ns: int) -> int:
    if latency_ns < _HIST_BASE_NS:
        return 0
    index = 0
    bound = _HIST_BASE_NS
    # Loop instead of log(): ~40 iterations worst case, called off the
    # measurement path only at record time; avoids float-precision edge
    # cases at bucket boundaries differing across platforms.
    while latency_ns >= bound * _HIST_GROWTH and index < _HIST_BUCKETS - 1:
        bound *= _HIST_GROWTH
        index += 1
    return index


@dataclass
class LatencyHistogram:
    """Mergeable geometric-bucket latency histogram."""

    counts: list[int] = field(
        default_factory=lambda: [0] * _HIST_BUCKETS
    )
    total: int = 0

    def record(self, latency_ns: int) -> None:
        self.counts[_bucket_index(latency_ns)] += 1
        self.total += 1

    def merge(self, other: "LatencyHistogram") -> None:
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total

    @classmethod
    def from_counts(cls, counts: list[int]) -> "LatencyHistogram":
        if len(counts) != _HIST_BUCKETS:
            raise ValueError(
                f"expected {_HIST_BUCKETS} buckets, got {len(counts)}"
            )
        return cls(counts=list(counts), total=sum(counts))

    def percentile(self, q: float) -> int | None:
        """Upper bound (ns) of the bucket holding the q-th percentile."""
        if self.total == 0:
            return None
        threshold = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= threshold:
                return int(_HIST_BASE_NS * _HIST_GROWTH ** (index + 1))
        return int(_HIST_BASE_NS * _HIST_GROWTH**_HIST_BUCKETS)

    def summary_ms(self) -> dict:
        def _ms(q):
            value = self.percentile(q)
            return None if value is None else round(value / 1e6, 3)

        return {"p50_ms": _ms(0.50), "p99_ms": _ms(0.99), "p999_ms": _ms(0.999)}


@dataclass
class LoadResult:
    """One open-loop run at one offered rate."""

    offered: int  # arrivals scheduled
    completed: int
    shed: int  # arrivals dropped at the in-flight cap
    errors: int
    duration_ns: int
    histogram: LatencyHistogram

    @property
    def goodput(self) -> float:
        """Successful calls per second of wall time."""
        if self.duration_ns <= 0:
            return 0.0
        return self.completed / (self.duration_ns / 1e9)

    def to_json(self) -> dict:
        payload = {
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "duration_ns": self.duration_ns,
            "goodput_per_s": round(self.goodput, 1),
            "histogram": list(self.histogram.counts),
        }
        payload.update(self.histogram.summary_ms())
        return payload

    @classmethod
    def from_json(cls, data: dict) -> "LoadResult":
        return cls(
            offered=int(data["offered"]),
            completed=int(data["completed"]),
            shed=int(data["shed"]),
            errors=int(data["errors"]),
            duration_ns=int(data["duration_ns"]),
            histogram=LatencyHistogram.from_counts(data["histogram"]),
        )


def merge_results(parts: list[LoadResult]) -> LoadResult:
    """Aggregate per-worker results for one load step (duration = max:
    workers run concurrently, so wall time is the slowest worker's)."""
    merged = LoadResult(0, 0, 0, 0, 0, LatencyHistogram())
    for part in parts:
        merged.offered += part.offered
        merged.completed += part.completed
        merged.shed += part.shed
        merged.errors += part.errors
        merged.duration_ns = max(merged.duration_ns, part.duration_ns)
        merged.histogram.merge(part.histogram)
    return merged


async def open_loop(
    call,
    rate_per_s: float,
    arrivals: int,
    seed: int,
    max_inflight: int = 4096,
) -> LoadResult:
    """Drive ``arrivals`` Poisson arrivals at ``rate_per_s`` through the
    async callable ``call(i)``; returns the measured :class:`LoadResult`.

    Latency is completion minus *scheduled* arrival. An arrival that
    finds ``max_inflight`` calls outstanding is shed immediately — an
    open-loop generator must never queue behind the system under test,
    or it degenerates into a closed loop.
    """
    import asyncio

    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be > 0")
    rng = random.Random(seed)
    histogram = LatencyHistogram()
    state = {"inflight": 0, "completed": 0, "errors": 0}
    tasks: list = []
    start_ns = time.perf_counter_ns()
    next_at_s = 0.0
    shed = 0

    async def _one(index: int, scheduled_ns: int) -> None:
        try:
            await call(index)
            state["completed"] += 1
            histogram.record(time.perf_counter_ns() - scheduled_ns)
        except BaseException:
            state["errors"] += 1
        finally:
            state["inflight"] -= 1

    for index in range(arrivals):
        next_at_s += rng.expovariate(rate_per_s)
        scheduled_ns = start_ns + int(next_at_s * 1e9)
        delay_s = (scheduled_ns - time.perf_counter_ns()) / 1e9
        if delay_s > 0:
            await asyncio.sleep(delay_s)
        if state["inflight"] >= max_inflight:
            shed += 1
            continue
        state["inflight"] += 1
        tasks.append(asyncio.ensure_future(_one(index, scheduled_ns)))
    if tasks:
        await asyncio.gather(*tasks)
    duration_ns = time.perf_counter_ns() - start_ns
    return LoadResult(
        offered=arrivals,
        completed=state["completed"],
        shed=shed,
        errors=state["errors"],
        duration_ns=duration_ns,
        histogram=histogram,
    )


def find_knee(
    steps: list[tuple[float, LoadResult]], efficiency: float = 0.95
) -> float | None:
    """The saturation knee: highest offered rate whose goodput still
    tracks it (goodput >= efficiency * offered)."""
    knee = None
    for rate, result in steps:
        if result.goodput >= efficiency * rate:
            knee = rate if knee is None else max(knee, rate)
    return knee


def modeled_users(goodput_per_s: float, think_s: float = 1.0) -> int:
    """Interactive-law user population a goodput sustains at a given
    think time: N = X * (R + Z) ~= X * Z when think dominates."""
    return int(goodput_per_s * think_s)
