"""Clock abstractions for the simulated platform.

The paper's probes read two local quantities: a wall-clock timestamp and a
per-thread CPU counter ("per-thread CPU consumption is available in HPUX
version 11 but not earlier versions", Section 2.1). Neither requires global
synchronization — latency is always computed from two readings taken on the
same host, and CPU from two readings taken on the same thread.

Two clock implementations are provided:

``RealClock``
    Backed by :func:`time.perf_counter_ns` and :func:`time.thread_time_ns`.
    Used by the benchmark harness to take laptop-scale measurements with the
    same semantics as the paper's HPUX counters.

``VirtualClock``
    A deterministic clock for tests and exact accounting experiments.
    Workload code *charges* CPU explicitly with :meth:`VirtualClock.consume`,
    which advances both the calling thread's CPU counter and the global
    virtual wall clock; :meth:`VirtualClock.idle` advances wall time only
    (modelling blocking waits).

Each host owns a clock and may apply a constant *skew* to wall readings,
modelling unsynchronized host clocks. Because the analyzer never subtracts
timestamps taken on different hosts, skew must not change any analysis
result — a property exercised by the test suite.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface for platform clocks.

    Subclasses provide monotonic wall time and per-thread CPU time, both in
    nanoseconds. ``thread_cpu_ns`` always refers to the *calling* thread,
    matching how the probes read the counter in the paper.
    """

    def wall_ns(self) -> int:
        """Return the current wall-clock reading in nanoseconds."""
        raise NotImplementedError

    def thread_cpu_ns(self) -> int:
        """Return the calling thread's cumulative CPU time in nanoseconds."""
        raise NotImplementedError


class RealClock(Clock):
    """Clock backed by the interpreter's high-resolution OS counters.

    The readers are bound as instance attributes pointing straight at the
    ``time`` builtins: probes prebind ``clock.wall_ns`` and then sample
    with zero Python frames in between, which matters because every probe
    reads the clock twice (the O_F bracket).
    """

    def __init__(self):
        self.wall_ns = time.perf_counter_ns
        self.thread_cpu_ns = time.thread_time_ns


class VirtualClock(Clock):
    """Deterministic clock driven entirely by explicit charges.

    The virtual wall clock is global to the clock instance and advances
    whenever any thread consumes CPU or idles. Per-thread CPU counters are
    kept in a dictionary keyed by OS thread id.

    The clock is thread-safe: concurrent ``consume`` calls from distinct
    threads serialize their advances, which models a single-processor host
    (the configuration used in the paper's experiments).
    """

    def __init__(self, start_ns: int = 0):
        self._wall_ns = start_ns
        self._cpu_ns: dict[int, int] = {}
        self._lock = threading.Lock()

    def wall_ns(self) -> int:
        with self._lock:
            return self._wall_ns

    def thread_cpu_ns(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            return self._cpu_ns.get(ident, 0)

    def consume(self, ns: int) -> None:
        """Charge ``ns`` nanoseconds of CPU to the calling thread.

        Advances the thread's CPU counter and the shared wall clock by the
        same amount, as on a single-processor host running this thread.
        """
        if ns < 0:
            raise ValueError(f"cannot consume negative CPU: {ns}")
        ident = threading.get_ident()
        with self._lock:
            self._cpu_ns[ident] = self._cpu_ns.get(ident, 0) + ns
            self._wall_ns += ns

    def idle(self, ns: int) -> None:
        """Advance wall time by ``ns`` without charging CPU to any thread."""
        if ns < 0:
            raise ValueError(f"cannot idle negative time: {ns}")
        with self._lock:
            self._wall_ns += ns

    def cpu_of_thread(self, ident: int) -> int:
        """Return the accumulated CPU of an arbitrary thread (test helper)."""
        with self._lock:
            return self._cpu_ns.get(ident, 0)

    def total_cpu_ns(self) -> int:
        """Return CPU accumulated across all threads (test helper)."""
        with self._lock:
            return sum(self._cpu_ns.values())


class SkewedClock(Clock):
    """A wall-skewed view over another clock.

    Models a host whose wall clock is offset from its peers. CPU readings
    are passed through unchanged — CPU counters are per-thread and never
    compared across hosts.
    """

    def __init__(self, base: Clock, skew_ns: int):
        self._base = base
        self._skew_ns = skew_ns

    @property
    def skew_ns(self) -> int:
        return self._skew_ns

    def wall_ns(self) -> int:
        return self._base.wall_ns() + self._skew_ns

    def thread_cpu_ns(self) -> int:
        return self._base.thread_cpu_ns()

    def __getattr__(self, name: str):
        # Forward consume()/idle() so workloads can charge the underlying
        # virtual clock through the skewed view.
        return getattr(self._base, name)
