"""Simulated OS processes.

A :class:`SimProcess` is the deployment unit of the paper's experiments
("the code base is partitioned into 32 threads in a single-processor
4-process configuration"). Each one owns:

- its host (processor) binding,
- a thread-specific storage instance used by the causality tunnel,
- a local monitoring log buffer (probes record locally, without
  coordination; the collector gathers buffers at quiescence),
- the threads it spawned, so shutdown can join them.

Runtimes (the ORB, the COM runtime, the monitoring runtime) attach
themselves to the process via plain attributes.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable

from repro.platform.host import Host
from repro.platform.tss import ContextVarStorage

_pid_counter = itertools.count(1)


class LocalLogBuffer:
    """Append-only per-process store for probe records.

    Probes append without any cross-process coordination (paper: "all
    runtime behavior information is recorded individually by probes
    without coordination and global clock synchronization").

    The unbounded default takes that to its conclusion *within* the
    process too: each appending thread owns a private segment list
    (registered once, under the lock, the first time the thread logs),
    and every subsequent ``append`` is a single GIL-atomic
    ``list.append`` — no lock acquisition on the probe hot path. The
    collector's ``drain`` copies-then-trims each segment under the lock,
    so a record appended concurrently with a drain is either delivered
    in that drain or kept for the next one, never lost. Records stay
    ordered within a thread; cross-thread interleaving is surrendered
    (the analyzer orders by chain UUID and event number, never by
    buffer position).

    ``capacity`` bounds the buffer: once full, further appends are
    *dropped and counted* rather than blocking the probe or growing
    without bound — a probe must never stall the application it observes.
    Bounded buffers keep the original single-list locked path so the
    capacity check and the drop counter stay exact. The analyzer
    tolerates the resulting record loss (chains reconstruct partial and
    flagged), so bounded capture degrades accounting, not soundness.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("log buffer capacity must be >= 1")
        self.capacity = capacity
        self._records: list[Any] = []  # bounded mode only
        self._segments: list[list[Any]] = []  # unbounded mode, creation order
        self._tls = threading.local()
        self._dropped = 0
        self._lock = threading.Lock()

    def append(self, record: Any) -> None:
        if self.capacity is not None:
            with self._lock:
                if len(self._records) >= self.capacity:
                    self._dropped += 1
                    return
                self._records.append(record)
            return
        try:
            segment = self._tls.segment
        except AttributeError:
            segment = []
            with self._lock:
                self._segments.append(segment)
            self._tls.segment = segment
        segment.append(record)

    @property
    def dropped(self) -> int:
        """Records rejected because the buffer was at capacity."""
        with self._lock:
            return self._dropped

    def drain(self) -> list[Any]:
        """Return and clear all records (used by the collector).

        Segments are consumed copy-then-trim: an append racing the drain
        lands after the copied prefix and survives into the next drain.
        """
        with self._lock:
            if self.capacity is not None:
                records = self._records
                self._records = []
                return records
            records = []
            for segment in self._segments:
                count = len(segment)
                records.extend(segment[:count])
                del segment[:count]
            return records

    def snapshot(self) -> list[Any]:
        with self._lock:
            if self.capacity is not None:
                return list(self._records)
            out: list[Any] = []
            for segment in self._segments:
                out.extend(segment)
            return out

    def read_from(self, cursor: tuple[int, ...] | None) -> tuple[list[Any], tuple[int, ...]]:
        """Incremental, non-draining read for live consumers.

        ``cursor`` is the opaque position returned by the previous call
        (``None`` to start from the beginning). Returns ``(new_records,
        new_cursor)``. Unlike indexing into ``snapshot()`` — whose
        cross-thread interleaving shifts as older segments keep growing —
        the cursor tracks a per-segment offset, so every record is
        observed exactly once and in per-thread order.
        """
        with self._lock:
            if self.capacity is not None:
                offset = cursor[0] if cursor else 0
                records = self._records[offset:]
                return records, (offset + len(records),)
            offsets = list(cursor) if cursor else []
            offsets.extend(0 for _ in range(len(self._segments) - len(offsets)))
            out: list[Any] = []
            for index, segment in enumerate(self._segments):
                count = len(segment)
                out.extend(segment[offsets[index] : count])
                offsets[index] = count
            return out, tuple(offsets)

    def __len__(self) -> int:
        with self._lock:
            if self.capacity is not None:
                return len(self._records)
            return sum(len(segment) for segment in self._segments)


class SimProcess:
    """One simulated OS process pinned to a host."""

    def __init__(self, name: str, host: Host):
        self.pid = next(_pid_counter)
        self.name = name
        self.host = host
        self.tss = ContextVarStorage()
        self.log_buffer = LocalLogBuffer()
        self.monitor: Any = None  # attached by repro.core.monitor
        self.orb: Any = None  # attached by repro.orb.orb
        self.com: Any = None  # attached by repro.com.runtime
        self.fault_hook: Any = None  # attached by repro.faults.FaultInjector
        self._threads: list[threading.Thread] = []
        self._threads_lock = threading.Lock()
        self._alive = True

    def spawn_thread(
        self, target: Callable[..., None], name: str, args: tuple = (), daemon: bool = True
    ) -> threading.Thread:
        """Start and track a thread belonging to this process."""
        thread = threading.Thread(
            target=target, args=args, name=f"{self.name}/{name}", daemon=daemon
        )
        with self._threads_lock:
            self._threads.append(thread)
        thread.start()
        return thread

    def join_threads(self, timeout: float = 2.0) -> None:
        """Join all spawned threads, bounded by ``timeout`` overall.

        Threads are daemons, so a straggler blocked on I/O cannot keep the
        interpreter alive; we only wait briefly for orderly completion.
        """
        import time

        deadline = time.monotonic() + timeout
        with self._threads_lock:
            threads = list(self._threads)
        for thread in threads:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            thread.join(timeout=remaining)

    def shutdown(self) -> None:
        """Mark the process dead and stop its attached runtimes."""
        self._alive = False
        for runtime in (self.orb, self.com):
            stop = getattr(runtime, "shutdown", None)
            if callable(stop):
                stop()
        self.join_threads()

    @property
    def alive(self) -> bool:
        return self._alive

    def __repr__(self) -> str:
        return f"SimProcess(pid={self.pid}, name={self.name!r}, host={self.host.name!r})"
