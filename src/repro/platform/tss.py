"""Thread-specific storage (TSS).

The virtual tunnel's in-process half: after the skeleton start probe, the
current FTL is stored in thread-specific storage so that any child stub
invoked from the function implementation can retrieve, update and carry it
further down the chain (paper Section 2.1, Figure 2). The TSS "is created
at the monitoring initialization phase by loading the instrumentation-
associated library, and is independent of user applications".

Because we simulate many OS processes inside one interpreter, the storage
is owned by each :class:`~repro.platform.process.SimProcess` and keyed by
the OS thread identifier. A real thread only ever executes inside one
simulated process at a time, so per-process keying preserves the paper's
process-isolation semantics.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator


class ThreadSpecificStorage:
    """A small per-process map from OS thread id to named slots.

    Slots are arbitrary; the monitoring runtime uses the ``"ftl"`` slot to
    hold the current :class:`~repro.core.ftl.FunctionTxLog`.
    """

    def __init__(self):
        self._slots: dict[int, dict[str, Any]] = {}
        self._lock = threading.Lock()

    def get(self, slot: str, default: Any = None) -> Any:
        """Return the calling thread's value for ``slot``.

        Lock-free: each thread only ever writes its *own* entry, and the
        individual dict operations are atomic under the GIL, so the hot
        probe path (several TSS reads per monitored invocation, on every
        thread at once) never serializes on a shared lock. The lock is
        kept only for cross-thread snapshots (``threads``/``__len__``).
        """
        thread_slots = self._slots.get(threading.get_ident())
        if thread_slots is None:
            return default
        return thread_slots.get(slot, default)

    def set(self, slot: str, value: Any) -> None:
        """Bind ``slot`` for the calling thread."""
        ident = threading.get_ident()
        thread_slots = self._slots.get(ident)
        if thread_slots is None:
            thread_slots = self._slots[ident] = {}
        thread_slots[slot] = value

    def pop(self, slot: str, default: Any = None) -> Any:
        """Remove and return the calling thread's value for ``slot``."""
        thread_slots = self._slots.get(threading.get_ident())
        if thread_slots is None:
            return default
        return thread_slots.pop(slot, default)

    def clear_thread(self) -> None:
        """Drop every slot bound to the calling thread.

        Called when a pooled server thread is recycled; observation O2 in
        the paper notes the stale FTL is harmless because it is always
        refreshed on the next dispatch, but clearing keeps tests tidy.
        """
        ident = threading.get_ident()
        with self._lock:
            self._slots.pop(ident, None)

    def threads(self) -> Iterator[int]:
        """Iterate over thread ids that currently hold any slot."""
        with self._lock:
            return iter(list(self._slots))

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)
