"""Execution-local storage: the FTL carrier behind the virtual tunnel.

The virtual tunnel's in-process half: after the skeleton start probe, the
current FTL is stored in execution-local storage so that any child stub
invoked from the function implementation can retrieve, update and carry it
further down the chain (paper Section 2.1, Figure 2). The storage "is
created at the monitoring initialization phase by loading the
instrumentation-associated library, and is independent of user
applications".

Two carriers implement the same slot API (``get``/``set``/``pop``/
``clear_thread``):

- :class:`ThreadSpecificStorage` — the paper-literal TSS, keyed by OS
  thread identifier. Correct under every *threaded* dispatch policy
  (observations O1/O2) but blind to asyncio: every task on an event loop
  shares one carrier thread, so thread keying would mingle their chains.
- :class:`ContextVarStorage` — the default carrier since the asyncio data
  plane landed: one :class:`contextvars.ContextVar` per slot. A context
  variable is implicitly per-thread (each OS thread runs in its own
  context, so the threaded plane keeps exactly the TSS semantics) *and*
  per-task (each asyncio task runs in a copy of its creator's context, so
  the FTL flows with the logical task across ``await`` boundaries and
  ``gather`` fan-outs instead of sticking to the carrier thread).

Because we simulate many OS processes inside one interpreter, the storage
is owned by each :class:`~repro.platform.process.SimProcess`. A real
thread (or task) only ever executes inside one simulated process at a
time, so per-process instances preserve the paper's process-isolation
semantics.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from typing import Any, Iterator


class ThreadSpecificStorage:
    """A small per-process map from OS thread id to named slots.

    Slots are arbitrary; the monitoring runtime uses the ``"ftl"`` slot to
    hold the current :class:`~repro.core.ftl.FunctionTxLog`.
    """

    def __init__(self):
        self._slots: dict[int, dict[str, Any]] = {}
        self._lock = threading.Lock()

    def get(self, slot: str, default: Any = None) -> Any:
        """Return the calling thread's value for ``slot``.

        Lock-free: each thread only ever writes its *own* entry, and the
        individual dict operations are atomic under the GIL, so the hot
        probe path (several TSS reads per monitored invocation, on every
        thread at once) never serializes on a shared lock. The lock is
        kept only for cross-thread snapshots (``threads``/``__len__``).
        """
        thread_slots = self._slots.get(threading.get_ident())
        if thread_slots is None:
            return default
        return thread_slots.get(slot, default)

    def set(self, slot: str, value: Any) -> None:
        """Bind ``slot`` for the calling thread."""
        ident = threading.get_ident()
        thread_slots = self._slots.get(ident)
        if thread_slots is None:
            thread_slots = self._slots[ident] = {}
        thread_slots[slot] = value

    def pop(self, slot: str, default: Any = None) -> Any:
        """Remove and return the calling thread's value for ``slot``."""
        thread_slots = self._slots.get(threading.get_ident())
        if thread_slots is None:
            return default
        return thread_slots.pop(slot, default)

    def clear_thread(self) -> None:
        """Drop every slot bound to the calling thread.

        Called when a pooled server thread is recycled; observation O2 in
        the paper notes the stale FTL is harmless because it is always
        refreshed on the next dispatch, but clearing keeps tests tidy.
        """
        ident = threading.get_ident()
        with self._lock:
            self._slots.pop(ident, None)

    def threads(self) -> Iterator[int]:
        """Iterate over thread ids that currently hold any slot."""
        with self._lock:
            return iter(list(self._slots))

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)


_MISSING = object()


class ContextVarStorage:
    """Execution-local slots backed by :mod:`contextvars`.

    Drop-in replacement for :class:`ThreadSpecificStorage` on the probe
    path: ``get``/``set``/``pop`` operate on the *current execution
    context* instead of the current OS thread. On plain threads the two
    are indistinguishable (each thread starts in its own empty context);
    under asyncio each task inherits a copy of its creator's context, so
    a child task sees the parent's FTL reference at spawn time while
    later ``set``s in either context stay isolated — exactly the fork
    semantics the virtual tunnel needs for ``gather`` fan-outs.

    One :class:`~contextvars.ContextVar` is created per slot name, on
    first use, under a lock; the hot path (slot already known) is a
    single dict lookup plus a ContextVar op, both GIL-atomic.
    """

    def __init__(self):
        self._vars: dict[str, ContextVar[Any]] = {}
        self._lock = threading.Lock()

    def _var(self, slot: str) -> ContextVar[Any]:
        var = self._vars.get(slot)
        if var is None:
            with self._lock:
                var = self._vars.get(slot)
                if var is None:
                    var = ContextVar(f"repro-tss-{slot}", default=_MISSING)
                    self._vars[slot] = var
        return var

    def get(self, slot: str, default: Any = None) -> Any:
        value = self._var(slot).get()
        return default if value is _MISSING else value

    def set(self, slot: str, value: Any) -> None:
        self._var(slot).set(value)

    def pop(self, slot: str, default: Any = None) -> Any:
        var = self._var(slot)
        value = var.get()
        if value is _MISSING:
            return default
        var.set(_MISSING)
        return value

    def clear_thread(self) -> None:
        """Drop every slot bound to the current execution context.

        Name kept for API compatibility with :class:`ThreadSpecificStorage`
        (the monitor calls it when a pooled server thread is recycled).
        """
        for var in list(self._vars.values()):
            var.set(_MISSING)

    def slots(self) -> Iterator[str]:
        """Iterate over slot names that have ever been bound anywhere."""
        with self._lock:
            return iter(list(self._vars))

    def __len__(self) -> int:
        """Number of slots bound (to a real value) in the current context."""
        return sum(1 for var in self._vars.values() if var.get() is not _MISSING)
