"""Simulated distributed platform: hosts, processes, clocks, TSS, network."""

from repro.platform.capabilities import (
    Capabilities,
    PlatformKind,
    ProcessorType,
    capabilities_for,
)
from repro.platform.clocks import Clock, RealClock, SkewedClock, VirtualClock
from repro.platform.host import Host
from repro.platform.network import Connection, Network
from repro.platform.process import LocalLogBuffer, SimProcess
from repro.platform.tss import ContextVarStorage, ThreadSpecificStorage

__all__ = [
    "Capabilities",
    "Clock",
    "Connection",
    "ContextVarStorage",
    "Host",
    "LocalLogBuffer",
    "Network",
    "PlatformKind",
    "ProcessorType",
    "RealClock",
    "SimProcess",
    "SkewedClock",
    "ThreadSpecificStorage",
    "VirtualClock",
    "capabilities_for",
]
