"""Simulated hosts (processors).

A :class:`Host` stands in for one physical machine in the paper's testbed
(e.g. "two processes on Windows NT and two on HPUX 11.0"). It carries the
platform kind, the processor type used for CPU vectors, the local clock
(optionally skewed to model unsynchronized wall clocks), and the OS
capability flags that gate CPU probing.
"""

from __future__ import annotations

from repro.platform.capabilities import (
    Capabilities,
    PlatformKind,
    ProcessorType,
    capabilities_for,
)
from repro.platform.clocks import Clock, RealClock, SkewedClock


class Host:
    """One simulated processor/machine."""

    def __init__(
        self,
        name: str,
        platform_kind: PlatformKind = PlatformKind.GENERIC,
        processor_type: ProcessorType = ProcessorType.X86,
        clock: Clock | None = None,
        clock_skew_ns: int = 0,
        capabilities: Capabilities | None = None,
    ):
        if not name:
            raise ValueError("host name must be non-empty")
        self.name = name
        self.platform_kind = platform_kind
        self.processor_type = processor_type
        base_clock = clock if clock is not None else RealClock()
        if clock_skew_ns:
            base_clock = SkewedClock(base_clock, clock_skew_ns)
        self.clock = base_clock
        self.capabilities = (
            capabilities if capabilities is not None else capabilities_for(platform_kind)
        )

    def wall_ns(self) -> int:
        """Read this host's (possibly skewed) wall clock."""
        return self.clock.wall_ns()

    def thread_cpu_ns(self) -> int | None:
        """Read the calling thread's CPU counter, or ``None`` if unsupported.

        Mirrors the paper: on platforms without per-thread CPU counters
        (pre-11 HPUX, the VxWorks CORBA) CPU probing degrades gracefully.
        """
        if not self.capabilities.supports_thread_cpu:
            return None
        return self.clock.thread_cpu_ns()

    def __repr__(self) -> str:
        return (
            f"Host({self.name!r}, {self.platform_kind.value},"
            f" {self.processor_type.value})"
        )
