"""In-memory network connecting simulated processes.

Cross-process invocations travel as byte strings over bidirectional
:class:`Connection` objects, mimicking TCP connections between ORB
endpoints. A :class:`Network` matches listeners (server endpoints) with
``connect`` calls and can impose per-link latency, so remote calls are
observably slower than collocated ones — the contrast the paper's latency
accuracy experiment relies on.

Latency injection is clock-aware: on a :class:`~repro.platform.clocks.VirtualClock`
the delay advances virtual wall time deterministically; on a real clock it
sleeps.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable

from repro.errors import TransportError
from repro.platform.clocks import VirtualClock
from repro.platform.host import Host


class Connection:
    """One direction-pair of byte queues between two endpoints."""

    def __init__(self, local_label: str, peer_label: str, network: "Network"):
        self.local_label = local_label
        self.peer_label = peer_label
        self._network = network
        # SimpleQueue: C-implemented put/get, no task-tracking machinery.
        # Every remote invocation crosses an inbox twice (request and
        # reply), so the queue primitive sits squarely on the data plane.
        self._inbox: queue.SimpleQueue[bytes | None] = queue.SimpleQueue()
        self._peer: Connection | None = None
        self._closed = False

    def _attach(self, peer: "Connection") -> None:
        self._peer = peer

    def send(self, payload: bytes, sender_host: Host | None = None) -> None:
        """Deliver ``payload`` to the peer endpoint, applying link latency.

        Flattened copy of :meth:`_deliver` — the fault layer overrides
        ``send`` and routes through ``_deliver``, but the base transport
        skips the extra frame on every message.
        """
        if self._closed or self._peer is None:
            raise TransportError(f"connection {self.local_label}->{self.peer_label} is closed")
        network = self._network
        if network._latency_active:
            network.apply_latency(self.local_label, self.peer_label, sender_host)
        self._peer._inbox.put(payload)

    def _deliver(self, payload: bytes, sender_host: Host | None) -> None:
        """The actual delivery path; ``send`` overrides decide, this delivers."""
        if self._closed or self._peer is None:
            raise TransportError(f"connection {self.local_label}->{self.peer_label} is closed")
        self._network.apply_latency(self.local_label, self.peer_label, sender_host)
        self._peer._inbox.put(payload)

    def recv(self, timeout: float | None = None) -> bytes:
        """Block until a payload arrives; raise on close or timeout."""
        try:
            payload = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise TransportError(
                f"recv timed out on {self.local_label}<-{self.peer_label}"
            ) from None
        if payload is None:
            # Like TCP after FIN: observing the peer's close closes this
            # side too, so connection caches reconnect instead of sending
            # into a dead endpoint.
            self._closed = True
            raise TransportError(f"connection {self.local_label} closed by peer")
        return payload

    def close(self) -> None:
        """Close both directions; local and peer receivers are unblocked."""
        if self._closed:
            return
        self._closed = True
        # Unblock a local reader stuck in recv() as well as the peer's.
        self._inbox.put(None)
        if self._peer is not None and not self._peer._closed:
            self._peer._inbox.put(None)

    @property
    def closed(self) -> bool:
        return self._closed


class Network:
    """Registry of listening endpoints plus link-latency configuration.

    Latency configuration is published copy-on-write: ``set_latency`` and
    ``set_default_latency`` replace the table wholesale under the lock,
    while ``apply_latency`` — which runs on **every** send — reads the
    published snapshot without acquiring anything. The zero-latency fast
    path (the common case: no latency configured anywhere) is a single
    attribute read and a falsy check; probes sending on N threads never
    serialize behind the network's global lock.
    """

    def __init__(self):
        self._listeners: dict[str, Callable[[Connection], None]] = {}
        #: Immutable snapshot, replaced (never mutated) by setters.
        self._latency_ns: dict[tuple[str, str], int] = {}
        self._default_latency_ns = 0
        #: True iff any latency is configured; gates the per-send lookup.
        self._latency_active = False
        self._lock = threading.Lock()

    def listen(self, address: str, on_connect: Callable[[Connection], None]) -> None:
        """Register a server endpoint; ``on_connect`` receives each new connection."""
        with self._lock:
            if address in self._listeners:
                raise TransportError(f"address already in use: {address}")
            self._listeners[address] = on_connect

    def unlisten(self, address: str) -> None:
        with self._lock:
            self._listeners.pop(address, None)

    def _new_connection(self, local_label: str, peer_label: str) -> Connection:
        """Connection factory; fault-injecting networks override this."""
        return Connection(local_label, peer_label, self)

    def connect(self, client_label: str, address: str) -> Connection:
        """Open a connection from ``client_label`` to a listening ``address``."""
        with self._lock:
            on_connect = self._listeners.get(address)
        if on_connect is None:
            raise TransportError(f"no listener at {address}")
        client_side = self._new_connection(client_label, address)
        server_side = self._new_connection(address, client_label)
        client_side._attach(server_side)
        server_side._attach(client_side)
        on_connect(server_side)
        return client_side

    def set_default_latency(self, latency_ns: int) -> None:
        """Latency applied to links without an explicit setting."""
        with self._lock:
            self._default_latency_ns = latency_ns
            self._latency_active = bool(self._latency_ns) or latency_ns > 0

    def set_latency(self, from_label: str, to_label: str, latency_ns: int) -> None:
        """Latency for one directed link (labels as used by connect/listen)."""
        with self._lock:
            table = dict(self._latency_ns)
            table[(from_label, to_label)] = latency_ns
            self._latency_ns = table
            self._latency_active = True

    def apply_latency(self, from_label: str, to_label: str, sender_host: Host | None) -> None:
        """Charge the configured link latency against the sender's clock.

        Lock-free by design: reads the copy-on-write snapshot published
        by the setters. A send racing a ``set_latency`` sees either the
        old or the new table — never a half-written one.
        """
        if not self._latency_active:
            return
        latency = self._latency_ns.get((from_label, to_label), self._default_latency_ns)
        if latency <= 0:
            return
        clock = sender_host.clock if sender_host is not None else None
        # SkewedClock forwards idle() to its base, so isinstance on the base
        # class is insufficient; duck-type on the idle method instead.
        idle = getattr(clock, "idle", None)
        if isinstance(clock, VirtualClock) or callable(idle):
            try:
                clock.idle(latency)  # type: ignore[union-attr]
                return
            except AttributeError:
                pass
        time.sleep(latency / 1e9)
