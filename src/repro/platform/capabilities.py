"""Platform capability modelling.

The paper is explicit that monitoring fidelity depends on the native
operating system: per-thread CPU counters exist on HPUX 11 but not earlier
versions, microsecond timing needs an on-chip high-resolution timer, and
"the VxWorks CORBA does not currently support CPU" (Section 6). We model
those differences so that a PPS deployment spanning HPUX, Windows and
VxWorks behaves like the paper's: CPU probes silently degrade to
causality-only on hosts that cannot supply the counter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PlatformKind(enum.Enum):
    """Operating platforms named in the paper's experiments."""

    HPUX_11 = "HPUX 11"
    HPUX_10 = "HPUX 10"
    WINDOWS_NT = "Windows NT"
    WINDOWS_2000 = "Windows 2000"
    VXWORKS = "VxWorks"
    GENERIC = "Generic"


class ProcessorType(enum.Enum):
    """Processor families; CPU totals are reported as a vector over these."""

    PA_RISC = "PA-RISC"
    X86 = "x86"
    EMBEDDED = "embedded"


@dataclass(frozen=True)
class Capabilities:
    """What the host's OS exposes to the monitoring probes."""

    supports_thread_cpu: bool
    timer_resolution_ns: int

    def __post_init__(self):
        if self.timer_resolution_ns <= 0:
            raise ValueError("timer resolution must be positive")


#: Default capability table, following Section 2.1 and Section 6.
DEFAULT_CAPABILITIES: dict[PlatformKind, Capabilities] = {
    PlatformKind.HPUX_11: Capabilities(supports_thread_cpu=True, timer_resolution_ns=1_000),
    PlatformKind.HPUX_10: Capabilities(supports_thread_cpu=False, timer_resolution_ns=10_000),
    PlatformKind.WINDOWS_NT: Capabilities(supports_thread_cpu=True, timer_resolution_ns=1_000),
    PlatformKind.WINDOWS_2000: Capabilities(supports_thread_cpu=True, timer_resolution_ns=1_000),
    PlatformKind.VXWORKS: Capabilities(supports_thread_cpu=False, timer_resolution_ns=1_000),
    PlatformKind.GENERIC: Capabilities(supports_thread_cpu=True, timer_resolution_ns=1),
}


def capabilities_for(kind: PlatformKind) -> Capabilities:
    """Look up the default capabilities of a platform kind."""
    return DEFAULT_CAPABILITIES[kind]
