"""PPS deployment and lifecycle.

Builds the 11-component pipeline over the instrumented (or plain) ORB in
any process/host placement — the paper stresses that the PPS "has been
flexibly configured into multiple processes hosted by different
platforms". Canonical configurations used by the experiments:

- :func:`monolithic_deployment` — everything in one process with
  collocation optimization on, so a job executes on a single thread (the
  paper's "monolithic single-thread configuration");
- :func:`four_process_deployment` — the single-processor 4-process HPUX
  split of Figure 6;
- :func:`mixed_platform_deployment` — 4 processes, two on Windows NT and
  two on HPUX 11.0 (the latency-accuracy configuration), optionally with
  the marking engine on VxWorks, whose CORBA "does not support CPU".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.pps.components import PpsWiring, build_servant_classes
from repro.apps.pps.idl import PPS_COMPONENTS, PPS_IDL
from repro.collector import MonitoringDatabase, collect_run
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb, ThreadPerRequest
from repro.platform import (
    Clock,
    Host,
    Network,
    PlatformKind,
    ProcessorType,
    SimProcess,
    VirtualClock,
)


@dataclass(frozen=True)
class HostSpec:
    """Host parameters for one PPS process."""

    platform: PlatformKind = PlatformKind.HPUX_11
    processor: ProcessorType = ProcessorType.PA_RISC
    clock_skew_ns: int = 0


@dataclass
class PpsDeployment:
    """Placement of the 11 components onto named processes/hosts."""

    name: str
    placement: dict[str, str]  # component -> process name
    hosts: dict[str, HostSpec]  # process name -> host spec
    collocation: bool = True
    shared_host: bool = True  # single-processor configs share one Host

    def process_names(self) -> list[str]:
        return sorted(set(self.placement.values()))


def monolithic_deployment() -> PpsDeployment:
    """All 11 components in one process; collocated single-thread runs."""
    placement = {name: "pps0" for name, _ in PPS_COMPONENTS}
    return PpsDeployment(
        name="monolithic",
        placement=placement,
        hosts={"pps0": HostSpec()},
        collocation=True,
    )


def four_process_deployment(collocation: bool = True) -> PpsDeployment:
    """The paper's single-processor 4-process configuration (HPUX 11.0)."""
    placement = {
        "JobSource": "pps0",
        "JobScheduler": "pps0",
        "Interpreter": "pps1",
        "FontManager": "pps1",
        "ColorTransform": "pps2",
        "Halftone": "pps2",
        "Compressor": "pps2",
        "Decompressor": "pps2",
        "MarkingEngine": "pps3",
        "ResourceManager": "pps3",
        "StatusLogger": "pps3",
    }
    spec = HostSpec()
    return PpsDeployment(
        name="four-process",
        placement=placement,
        hosts={p: spec for p in ("pps0", "pps1", "pps2", "pps3")},
        collocation=collocation,
    )


def mixed_platform_deployment(
    vxworks_marker: bool = False, skew_ns: int = 5_000_000
) -> PpsDeployment:
    """4 processes on heterogeneous platforms with skewed wall clocks."""
    placement = four_process_deployment().placement
    hosts = {
        "pps0": HostSpec(PlatformKind.WINDOWS_NT, ProcessorType.X86, 0),
        "pps1": HostSpec(PlatformKind.WINDOWS_NT, ProcessorType.X86, skew_ns),
        "pps2": HostSpec(PlatformKind.HPUX_11, ProcessorType.PA_RISC, -skew_ns),
        "pps3": HostSpec(
            PlatformKind.VXWORKS if vxworks_marker else PlatformKind.HPUX_11,
            ProcessorType.EMBEDDED if vxworks_marker else ProcessorType.PA_RISC,
            2 * skew_ns,
        ),
    }
    return PpsDeployment(
        name="mixed-platform",
        placement=placement,
        hosts=hosts,
        collocation=False,
        shared_host=False,
    )


class PpsSystem:
    """A running PPS instance: processes, ORBs, servants and stubs."""

    def __init__(
        self,
        deployment: PpsDeployment,
        mode: MonitorMode = MonitorMode.LATENCY,
        instrument: bool = True,
        clock: Clock | None = None,
        cost_scale: int = 1_000,
        uuid_prefix: str = "dd",
        policy_factory: Callable[[], Any] | None = None,
        network_latency_ns: int = 0,
        network: Network | None = None,
        request_timeout: float = 30.0,
        channel: str = "mux",
    ):
        self.deployment = deployment
        # An injected network (e.g. a faults.FaultyNetwork) lets the chaos
        # matrix run the full pipeline under seeded message faults.
        self.network = network if network is not None else Network()
        if network_latency_ns:
            self.network.set_default_latency(network_latency_ns)
        self.request_timeout = request_timeout
        self.registry = InterfaceRegistry()
        self.compiled = compile_idl(PPS_IDL, instrument=instrument, registry=self.registry)
        self.clock = clock if clock is not None else VirtualClock()
        uuid_factory = SequentialUuidFactory(uuid_prefix)
        self.processes: dict[str, SimProcess] = {}
        self.orbs: dict[str, Orb] = {}
        self._wirings: dict[str, PpsWiring] = {}
        shared_host: Host | None = None

        for process_name in deployment.process_names():
            spec = deployment.hosts[process_name]
            if deployment.shared_host and shared_host is not None:
                host = shared_host
            else:
                host = Host(
                    name=f"host-{process_name}" if not deployment.shared_host else "host0",
                    platform_kind=spec.platform,
                    processor_type=spec.processor,
                    clock=self.clock,
                    clock_skew_ns=spec.clock_skew_ns,
                )
                if deployment.shared_host:
                    shared_host = host
            process = SimProcess(process_name, host)
            MonitoringRuntime(
                process, MonitorConfig(mode=mode, uuid_factory=uuid_factory)
            )
            policy = policy_factory() if policy_factory is not None else ThreadPerRequest()
            orb = Orb(
                process,
                self.network,
                policy=policy,
                collocation_optimization=deployment.collocation,
                registry=self.registry,
                request_timeout=request_timeout,
                channel=channel,
            )
            self.processes[process_name] = process
            self.orbs[process_name] = orb
            self._wirings[process_name] = PpsWiring()

        self.servants: dict[str, Any] = {}
        self.refs: dict[str, Any] = {}
        classes = build_servant_classes(self.compiled)
        for component, interface in PPS_COMPONENTS:
            process_name = deployment.placement[component]
            process = self.processes[process_name]
            servant = classes[component](
                process.host, self._wirings[process_name], cost_scale
            )
            ref = self.orbs[process_name].activate(
                servant, interface=interface, component=component
            )
            self.servants[component] = servant
            self.refs[component] = ref

        # Wire every process's stubs now that all references exist.
        stub_attr = {
            "JobScheduler": "scheduler",
            "Interpreter": "interpreter",
            "FontManager": "font_manager",
            "ColorTransform": "color_transform",
            "Halftone": "halftone",
            "Compressor": "compressor",
            "Decompressor": "decompressor",
            "MarkingEngine": "marking_engine",
            "ResourceManager": "resource_manager",
            "StatusLogger": "status_logger",
        }
        for process_name, orb in self.orbs.items():
            wiring = self._wirings[process_name]
            for component, attr in stub_attr.items():
                setattr(wiring, attr, orb.resolve(self.refs[component]))

    # ------------------------------------------------------------------

    def stub_for(self, component: str, from_process: str | None = None):
        """Resolve a stub to a component from a given process's ORB."""
        if from_process is None:
            from_process = self.deployment.placement[component]
        return self.orbs[from_process].resolve(self.refs[component])

    def run(self, njobs: int = 2, pages: int = 3, complexity: int = 2) -> None:
        """Drive the pipeline: produce ``njobs`` jobs end to end."""
        source = self.stub_for("JobSource")
        source.produce(njobs, pages, complexity)

    def quiesce(self, timeout: float = 5.0) -> None:
        """Wait until oneway dispatches drain and log buffers stabilize."""
        deadline = time.monotonic() + timeout
        last = -1
        stable = 0
        while time.monotonic() < deadline:
            size = sum(len(p.log_buffer) for p in self.processes.values())
            if size == last:
                stable += 1
                if stable >= 3:
                    return
            else:
                stable = 0
                last = size
            time.sleep(0.01)

    def collect(
        self, database: MonitoringDatabase | None = None, description: str = ""
    ) -> tuple[MonitoringDatabase, str]:
        self.quiesce()
        return collect_run(
            self.processes.values(),
            database=database,
            description=description or f"PPS {self.deployment.name}",
        )

    def shutdown(self) -> None:
        for process in self.processes.values():
            process.shutdown()

    # ------------------------------------------------------------------

    def manual_latency(
        self,
        caller_process: str,
        component: str,
        method: str,
        args: tuple,
        calls: int = 10,
    ) -> list[int]:
        """The paper's manual measurement: one probe around one target
        function, timestamps at its beginning and end, in its own run."""
        stub = self.orbs[caller_process].resolve(self.refs[component])
        host = self.processes[caller_process].host
        samples: list[int] = []
        bound = getattr(stub, method)
        for _ in range(calls):
            start = host.wall_ns()
            bound(*args)
            samples.append(host.wall_ns() - start)
        return samples
