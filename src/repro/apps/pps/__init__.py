"""Printing Pipeline Simulator (PPS): the paper's CORBA example system."""

from repro.apps.pps.idl import PPS_COMPONENTS, PPS_IDL
from repro.apps.pps.pipeline import (
    HostSpec,
    PpsDeployment,
    PpsSystem,
    four_process_deployment,
    mixed_platform_deployment,
    monolithic_deployment,
)

__all__ = [
    "HostSpec",
    "PPS_COMPONENTS",
    "PPS_IDL",
    "PpsDeployment",
    "PpsSystem",
    "four_process_deployment",
    "mixed_platform_deployment",
    "monolithic_deployment",
]
