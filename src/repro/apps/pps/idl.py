"""The Printing Pipeline Simulator's IDL definition.

The PPS "is ORBlite based and consists of 11 components" and "has been
flexibly configured into multiple processes hosted by different platforms
that include HPUX, Windows and VxWorks" (Section 4). The interfaces below
model a raster printing pipeline: job production, scheduling, raster
image processing (with font loading), per-page color transform →
halftone → compress → decompress → mark, resource accounting and a
oneway status logger.
"""

PPS_IDL = """
module PPS {
  struct Job {
    long id;
    long pages;
    long complexity;
  };

  exception OutOfResources {
    string resource;
    long requested;
  };

  interface StatusLogger {
    oneway void log_event(in string message);
  };

  interface FontManager {
    long load_fonts(in long complexity);
  };

  interface ResourceManager {
    long reserve(in long amount) raises (OutOfResources);
    void free_resources(in long amount);
  };

  interface Interpreter {
    long interpret(in Job job);
  };

  interface ColorTransform {
    long transform(in long page_data);
  };

  interface Halftone {
    long halftone(in long page_data);
  };

  interface Compressor {
    long compress(in long page_data);
  };

  interface Decompressor {
    long decompress(in long page_data);
  };

  interface MarkingEngine {
    void mark(in long page_data);
  };

  interface JobScheduler {
    void submit(in Job job);
  };

  interface JobSource {
    void produce(in long njobs, in long pages, in long complexity);
  };
};
"""

#: The 11 PPS components and their interfaces, in pipeline order.
PPS_COMPONENTS = (
    ("JobSource", "PPS::JobSource"),
    ("JobScheduler", "PPS::JobScheduler"),
    ("Interpreter", "PPS::Interpreter"),
    ("FontManager", "PPS::FontManager"),
    ("ColorTransform", "PPS::ColorTransform"),
    ("Halftone", "PPS::Halftone"),
    ("Compressor", "PPS::Compressor"),
    ("Decompressor", "PPS::Decompressor"),
    ("MarkingEngine", "PPS::MarkingEngine"),
    ("ResourceManager", "PPS::ResourceManager"),
    ("StatusLogger", "PPS::StatusLogger"),
)
