"""PPS servant implementations.

Each servant charges a deterministic CPU cost proportional to its input
(via :func:`repro.workloads.burn.burn_cpu`, so the same code runs exactly
on a virtual clock and realistically on a real one) and forwards work to
its downstream peers through ordinary generated stubs — which is what
drives the causal chains the monitoring captures.
"""

from __future__ import annotations

from typing import Any

from repro.platform.host import Host
from repro.workloads.burn import burn_cpu


class PpsWiring:
    """Late-bound stubs connecting the pipeline stages."""

    def __init__(self):
        self.scheduler: Any = None
        self.interpreter: Any = None
        self.font_manager: Any = None
        self.color_transform: Any = None
        self.halftone: Any = None
        self.compressor: Any = None
        self.decompressor: Any = None
        self.marking_engine: Any = None
        self.resource_manager: Any = None
        self.status_logger: Any = None


def build_servant_classes(compiled) -> dict[str, type]:
    """Create the 11 servant classes over the compiled PPS IDL.

    Every class takes ``(host, wiring, cost_scale)``; ``host`` supplies
    the clock used for CPU burning, ``wiring`` the downstream stubs.
    """
    ns = compiled.namespace
    Job = ns["PPS_Job"]
    OutOfResources = ns["PPS_OutOfResources"]

    class _Base:
        def __init__(self, host: Host, wiring: PpsWiring, cost_scale: int = 1_000):
            self.host = host
            self.wiring = wiring
            self.cost_scale = cost_scale

        def _burn(self, units: int) -> None:
            burn_cpu(self.host, units * self.cost_scale)

    class JobSource(_Base, ns["PPS_JobSource"]):
        """Produces print jobs and submits them to the scheduler."""

        def produce(self, njobs, pages, complexity):
            for job_id in range(njobs):
                self._burn(2)  # job assembly
                job = Job(id=job_id, pages=pages, complexity=complexity)
                self.wiring.scheduler.submit(job)

    class JobScheduler(_Base, ns["PPS_JobScheduler"]):
        """Orchestrates one job through the pipeline."""

        def submit(self, job):
            self._burn(3)  # admission + queueing decisions
            self.wiring.resource_manager.reserve(job.pages)
            page_data = self.wiring.interpreter.interpret(job)
            for _page in range(job.pages):
                data = self.wiring.color_transform.transform(page_data)
                data = self.wiring.halftone.halftone(data)
                data = self.wiring.compressor.compress(data)
                data = self.wiring.decompressor.decompress(data)
                self.wiring.marking_engine.mark(data)
            self.wiring.resource_manager.free_resources(job.pages)
            self.wiring.status_logger.log_event(f"job {job.id} done")

    class Interpreter(_Base, ns["PPS_Interpreter"]):
        """Raster image processor; loads fonts for complex jobs."""

        def interpret(self, job):
            fonts = self.wiring.font_manager.load_fonts(job.complexity)
            self._burn(5 + 2 * job.complexity)  # RIP work
            return job.id * 1_000 + fonts

    class FontManager(_Base, ns["PPS_FontManager"]):
        def load_fonts(self, complexity):
            self._burn(1 + complexity)
            return complexity * 3

    class ColorTransform(_Base, ns["PPS_ColorTransform"]):
        def transform(self, page_data):
            self._burn(4)
            return page_data + 1

    class Halftone(_Base, ns["PPS_Halftone"]):
        def halftone(self, page_data):
            self._burn(3)
            return page_data + 1

    class Compressor(_Base, ns["PPS_Compressor"]):
        def compress(self, page_data):
            self._burn(2)
            return page_data + 1

    class Decompressor(_Base, ns["PPS_Decompressor"]):
        def decompress(self, page_data):
            self._burn(2)
            return page_data + 1

    class MarkingEngine(_Base, ns["PPS_MarkingEngine"]):
        def mark(self, page_data):
            self._burn(6)  # the physical marking pass dominates

    class ResourceManager(_Base, ns["PPS_ResourceManager"]):
        def __init__(self, host, wiring, cost_scale: int = 1_000, capacity: int = 1_000_000):
            super().__init__(host, wiring, cost_scale)
            self.capacity = capacity
            self.reserved = 0

        def reserve(self, amount):
            self._burn(1)
            if self.reserved + amount > self.capacity:
                raise OutOfResources(resource="pages", requested=amount)
            self.reserved += amount
            return self.capacity - self.reserved

        def free_resources(self, amount):
            self._burn(1)
            self.reserved = max(0, self.reserved - amount)

    class StatusLogger(_Base, ns["PPS_StatusLogger"]):
        def __init__(self, host, wiring, cost_scale: int = 1_000):
            super().__init__(host, wiring, cost_scale)
            self.events: list[str] = []

        def log_event(self, message):
            self._burn(1)
            self.events.append(message)

    return {
        "JobSource": JobSource,
        "JobScheduler": JobScheduler,
        "Interpreter": Interpreter,
        "FontManager": FontManager,
        "ColorTransform": ColorTransform,
        "Halftone": Halftone,
        "Compressor": Compressor,
        "Decompressor": Decompressor,
        "MarkingEngine": MarkingEngine,
        "ResourceManager": ResourceManager,
        "StatusLogger": StatusLogger,
    }
