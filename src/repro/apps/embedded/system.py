"""Deployment and driver for the synthetic embedded system."""

from __future__ import annotations

import time
from typing import Any

from repro.apps.embedded.generator import (
    EmbeddedConfig,
    EmbeddedSplitter,
    generate_embedded_idl,
)
from repro.collector import MonitoringDatabase, collect_run
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.idl.codegen import py_name
from repro.orb import InterfaceRegistry, Orb, ThreadPool
from repro.platform import (
    Clock,
    Host,
    Network,
    PlatformKind,
    ProcessorType,
    SimProcess,
    VirtualClock,
)
from repro.workloads.burn import burn_cpu


class _EmbeddedServantMixin:
    """Shared behaviour of every synthetic component method."""

    def _configure(self, system: "EmbeddedSystem", component_index: int) -> None:
        self._system = system
        self._component_index = component_index
        self._process_index = component_index % system.config.processes
        self._stub_cache: dict[int, Any] = {}

    def _handle(self, method_index: int, budget: int, path_seed: int) -> int:
        system = self._system
        burn_cpu(system.hosts[self._process_index], system.config.cost_ns)
        children = system.splitter.plan(budget, path_seed, self._process_index)
        for child_index, (component, method, child_budget) in enumerate(children):
            stub = self._stub_for(component)
            child_seed = system.splitter.derive_path_seed(path_seed, child_index)
            getattr(stub, f"m{method}")(child_budget, child_seed)
        return budget

    def _stub_for(self, component: int) -> Any:
        stub = self._stub_cache.get(component)
        if stub is None:
            orb = self._system.orbs[self._process_index]
            stub = orb.resolve(self._system.refs[component])
            self._stub_cache[component] = stub
        return stub


class EmbeddedSystem:
    """The running synthetic system: 4 processes, pooled dispatch threads."""

    def __init__(
        self,
        config: EmbeddedConfig | None = None,
        mode: MonitorMode = MonitorMode.CAUSALITY,
        instrument: bool = True,
        clock: Clock | None = None,
        uuid_prefix: str = "ee",
        network: Network | None = None,
        policy_factory=None,
        channel: str = "mux",
        request_timeout: float = 30.0,
    ):
        self.config = config if config is not None else EmbeddedConfig()
        # An injected network (e.g. a faults.FaultyNetwork) lets suite
        # scenarios run the synthetic system under seeded message faults.
        self.network = network if network is not None else Network()
        self.registry = InterfaceRegistry()
        idl_source = generate_embedded_idl(self.config)
        self.compiled = compile_idl(idl_source, instrument=instrument, registry=self.registry)
        self.clock = clock if clock is not None else VirtualClock()
        self.method_counts = self.config.methods_per_interface()
        self.splitter = EmbeddedSplitter(self.config, self.method_counts)

        uuid_factory = SequentialUuidFactory(uuid_prefix)
        # Single-processor configuration: every process shares one host.
        shared_host = Host(
            "embedded-host",
            PlatformKind.HPUX_11,
            ProcessorType.PA_RISC,
            clock=self.clock,
        )
        self.hosts: list[Host] = [shared_host] * self.config.processes
        self.processes: list[SimProcess] = []
        self.orbs: list[Orb] = []
        for index in range(self.config.processes):
            process = SimProcess(f"emb{index}", shared_host)
            MonitoringRuntime(
                process, MonitorConfig(mode=mode, uuid_factory=uuid_factory)
            )
            orb = Orb(
                process,
                self.network,
                policy=(
                    policy_factory()
                    if policy_factory is not None
                    else ThreadPool(self.config.pool_threads_per_process)
                ),
                registry=self.registry,
                channel=channel,
                request_timeout=request_timeout,
            )
            self.processes.append(process)
            self.orbs.append(orb)

        # Instantiate the 176 components round-robin over the processes.
        self.refs: list[Any] = []
        self.servants: list[Any] = []
        for component_index in range(self.config.components):
            interface_index = self.config.interface_of_component(component_index)
            interface_name = f"Embedded::I{interface_index:03d}"
            servant_base = self.compiled.namespace[py_name(interface_name)]
            method_bodies: dict[str, Any] = {}
            for method_index in range(self.method_counts[interface_index]):

                def body(self, budget, path_seed, _m=method_index):
                    return self._handle(_m, budget, path_seed)

                body.__name__ = f"m{method_index}"
                method_bodies[f"m{method_index}"] = body
            servant_class = type(
                f"C{component_index:03d}",
                (_EmbeddedServantMixin, servant_base),
                method_bodies,
            )
            servant = servant_class()
            servant._configure(self, component_index)
            process_index = component_index % self.config.processes
            ref = self.orbs[process_index].activate(
                servant,
                interface=interface_name,
                component=f"C{component_index:03d}",
            )
            self.refs.append(ref)
            self.servants.append(servant)

    # ------------------------------------------------------------------

    def run(self, total_calls: int = 20_000, roots: int = 8) -> None:
        """Drive exactly ``total_calls`` component invocations.

        The budget-split invariant guarantees one invocation per budget
        unit; the driver issues ``roots`` sequential root calls whose
        budgets sum to ``total_calls``.
        """
        if total_calls < roots:
            roots = total_calls
        base, extra = divmod(total_calls, roots)
        budgets = [base + 1 if index < extra else base for index in range(roots)]
        driver_orb = self.orbs[0]
        for root_index, budget in enumerate(budgets):
            component = root_index % self.config.components
            interface_index = self.config.interface_of_component(component)
            stub = driver_orb.resolve(self.refs[component])
            method = root_index % self.method_counts[interface_index]
            getattr(stub, f"m{method}")(budget, root_index + 1)
            # Each root call is an independent transaction: detach the
            # driver thread's FTL so the next root starts a fresh chain.
            monitor = self.processes[0].monitor
            if monitor is not None:
                monitor.unbind_ftl()

    def quiesce(self, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        last, stable = -1, 0
        while time.monotonic() < deadline:
            size = sum(len(p.log_buffer) for p in self.processes)
            if size == last:
                stable += 1
                if stable >= 3:
                    return
            else:
                stable, last = 0, size
            time.sleep(0.01)

    def collect(
        self, database: MonitoringDatabase | None = None, description: str = ""
    ) -> tuple[MonitoringDatabase, str]:
        self.quiesce()
        return collect_run(
            self.processes,
            database=database,
            description=description or "embedded synthetic system",
        )

    def shutdown(self) -> None:
        for process in self.processes:
            process.shutdown()
