"""Synthetic large-scale embedded system (the Figure-5 subject)."""

from repro.apps.embedded.generator import (
    EmbeddedConfig,
    EmbeddedSplitter,
    generate_embedded_idl,
)
from repro.apps.embedded.system import EmbeddedSystem

__all__ = [
    "EmbeddedConfig",
    "EmbeddedSplitter",
    "EmbeddedSystem",
    "generate_embedded_idl",
]
