"""Synthetic large-scale embedded system — the Figure-5 subject.

The paper's commercial system: "more than 1 million lines of code ...
partitioned into 32 threads in a single-processor 4 processes
configuration. The largest system run ever conducted so far consisted of
about 195,000 calls, with a total of 801 unique methods in 155 unique
interfaces from 176 unique components."

This generator reproduces those population counts exactly: it emits an
IDL specification with 155 interfaces totalling 801 methods, builds 176
component servants over them (so some interfaces have multiple
implementations, as in any real product), deploys them into 4 simulated
processes with fixed-size dispatch thread pools, and drives a seeded
budget-split workload whose total call count is chosen exactly.

Deadlock-safe dimensioning: child calls round-robin to the next process
and budgets split into 2-4 near-equal parts, so a chain of budget B nests
at most ~log_1.6(B) frames, of which at most a quarter (plus one) sit in
any single process — comfortably below the per-process pool size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class EmbeddedConfig:
    """Population counts, defaulting to the paper's (Section 4)."""

    components: int = 176
    interfaces: int = 155
    methods: int = 801
    processes: int = 4
    pool_threads_per_process: int = 8  # 4 x 8 = the paper's 32 threads
    seed: int = 2003
    cost_ns: int = 2_000
    max_fanout: int = 4

    def __post_init__(self):
        if self.interfaces < 1 or self.methods < self.interfaces:
            raise ValueError("need at least one method per interface")
        if self.components < self.interfaces:
            raise ValueError(
                "components must be >= interfaces so every interface is implemented"
            )
        if self.processes < 1:
            raise ValueError("need at least one process")

    def methods_per_interface(self) -> list[int]:
        """Distribute the method total: 801 over 155 → 26x6 + 129x5."""
        base, extra = divmod(self.methods, self.interfaces)
        return [base + 1 if index < extra else base for index in range(self.interfaces)]

    def interface_of_component(self, component_index: int) -> int:
        """Components cover all interfaces; extras wrap around."""
        return component_index % self.interfaces


def generate_embedded_idl(config: EmbeddedConfig) -> str:
    """Emit the synthetic system's IDL: I000..I154 with m0..m{k-1}."""
    counts = config.methods_per_interface()
    lines = ["module Embedded {"]
    for index, count in enumerate(counts):
        lines.append(f"  interface I{index:03d} {{")
        for method in range(count):
            lines.append(
                f"    long m{method}(in long budget, in long path_seed);"
            )
        lines.append("  };")
    lines.append("};")
    return "\n".join(lines) + "\n"


class EmbeddedSplitter:
    """Near-equal budget splitting with round-robin process targeting."""

    def __init__(self, config: EmbeddedConfig, method_counts: list[int]):
        self.config = config
        self.method_counts = method_counts
        # Components grouped by hosting process (round-robin placement).
        self.by_process: list[list[int]] = [[] for _ in range(config.processes)]
        for component in range(config.components):
            self.by_process[component % config.processes].append(component)

    def plan(
        self, budget: int, path_seed: int, current_process: int
    ) -> list[tuple[int, int, int]]:
        """Return (component, method, child_budget) fan-out decisions.

        ``budget - 1`` is split into 2..max_fanout near-equal parts (equal
        ±25 %), each directed at a component in the *next* process — this
        bounds nesting depth and per-process frame count, keeping the
        fixed thread pools deadlock-free.
        """
        remaining = budget - 1
        if remaining <= 0:
            return []
        rng = random.Random(self.config.seed * 2_654_435_761 + path_seed)
        if remaining == 1:
            fanout = 1
        else:
            fanout = min(rng.randint(2, self.config.max_fanout), remaining)
        base, extra = divmod(remaining, fanout)
        parts = [base + 1 if index < extra else base for index in range(fanout)]
        # Jitter at most a quarter of the base between adjacent parts so
        # no part exceeds ~1.25x the mean (bounded depth guarantee).
        if base >= 4:
            for index in range(fanout - 1):
                shift = rng.randint(0, base // 4)
                parts[index] += shift
                parts[index + 1] -= shift
        target_process = (current_process + 1) % self.config.processes
        candidates = self.by_process[target_process]
        children = []
        for part in parts:
            if part <= 0:
                continue
            component = rng.choice(candidates)
            interface = self.config.interface_of_component(component)
            method = rng.randrange(self.method_counts[interface])
            children.append((component, method, part))
        return children

    @staticmethod
    def derive_path_seed(path_seed: int, child_index: int) -> int:
        return hash((path_seed, child_index)) & 0x7FFFFFFF
