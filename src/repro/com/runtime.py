"""Per-process COM runtime: apartments, class objects, object export.

The runtime plays the role of the paper's "embedded infrastructure
similar to COM": it creates apartments, instantiates coclasses inside
them, exports object identities, and mediates every cross-apartment call
through the ORPC channel (:mod:`repro.com.orpc`).

``instrumented`` switches the probe-bearing proxies/dispatch on or off
(the codegen flag analogue); ``causality_hooks`` switches the runtime
instrumentation that prevents STA chain mingling — the paper's fix, which
the ablation benchmark toggles.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.com.apartments import Apartment, Mta, Sta
from repro.com.guids import clsid_for
from repro.com.interfaces import ComInterface, ComObject, IUNKNOWN
from repro.com.orpc import ObjectIdentity, Proxy
from repro.errors import ComError
from repro.platform.process import SimProcess


class ClassFactory:
    """COM class object: creates instances of one coclass."""

    def __init__(self, coclass: type[ComObject], runtime: "ComRuntime"):
        self.coclass = coclass
        self.runtime = runtime
        self.clsid = clsid_for(coclass.__name__)

    def create_instance(self, apartment: Apartment, *args, **kwargs) -> ObjectIdentity:
        obj = self.coclass(*args, **kwargs)
        return self.runtime.export(obj, apartment)


class ComRuntime:
    """COM services for one simulated process."""

    def __init__(
        self,
        process: SimProcess,
        instrumented: bool = True,
        causality_hooks: bool = True,
        call_timeout: float = 30.0,
    ):
        self.process = process
        self.instrumented = instrumented
        self.causality_hooks = causality_hooks
        self.call_timeout = call_timeout
        self._apartments: list[Apartment] = []
        self._thread_apartments: dict[int, Apartment] = {}
        self._factories: dict[str, ClassFactory] = {}
        self._lock = threading.Lock()
        process.com = self

    # ------------------------------------------------------------------
    # Apartments

    def create_sta(self, label: str) -> Sta:
        sta = Sta(self.process, label)
        with self._lock:
            self._apartments.append(sta)
            self._thread_apartments[sta._thread.ident] = sta
        return sta

    def create_mta(self, label: str = "mta", size: int = 4) -> Mta:
        mta = Mta(self.process, label, size)
        with self._lock:
            self._apartments.append(mta)
            for thread in mta._threads:
                self._thread_apartments[thread.ident] = mta
        return mta

    def apartment_of_current_thread(self) -> Apartment | None:
        with self._lock:
            return self._thread_apartments.get(threading.get_ident())

    # ------------------------------------------------------------------
    # Class objects and instances

    def register_class(self, coclass: type[ComObject]) -> ClassFactory:
        factory = ClassFactory(coclass, self)
        with self._lock:
            self._factories[factory.clsid] = factory
        return factory

    def get_class_object(self, coclass_or_clsid) -> ClassFactory:
        clsid = (
            coclass_or_clsid
            if isinstance(coclass_or_clsid, str)
            else clsid_for(coclass_or_clsid.__name__)
        )
        with self._lock:
            factory = self._factories.get(clsid)
        if factory is None:
            raise ComError(f"class not registered: {clsid}")
        return factory

    def create_object(
        self, coclass: type[ComObject], apartment: Apartment, *args, **kwargs
    ) -> ObjectIdentity:
        """CoCreateInstance equivalent (auto-registering the class)."""
        clsid = clsid_for(coclass.__name__)
        with self._lock:
            factory = self._factories.get(clsid)
        if factory is None:
            factory = self.register_class(coclass)
        return factory.create_instance(apartment, *args, **kwargs)

    def export(self, obj: ComObject, apartment: Apartment) -> ObjectIdentity:
        """Export an existing object from an apartment."""
        if apartment not in self._apartments:
            raise ComError("apartment does not belong to this runtime")
        return ObjectIdentity(obj, apartment, self)

    # ------------------------------------------------------------------
    # Proxies

    def proxy_for(
        self, identity: ObjectIdentity, interface: ComInterface | None = None
    ) -> Proxy:
        """Obtain an interface pointer usable from this process."""
        if interface is None:
            implements = identity.obj.implements
            if len(implements) != 1:
                raise ComError(
                    "object implements several interfaces; pass interface= explicitly"
                )
            interface = implements[0]
        if interface != IUNKNOWN and not identity.obj.supports(interface):
            from repro.errors import InterfaceNotSupported

            raise InterfaceNotSupported(
                f"{type(identity.obj).__name__} does not support {interface.name}"
            )
        return Proxy(identity, interface, self)

    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        with self._lock:
            apartments = list(self._apartments)
        for apartment in apartments:
            apartment.shutdown()
