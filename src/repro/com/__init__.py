"""COM-like runtime: apartments, ORPC channel, channel hooks."""

from repro.com.apartments import Apartment, CallMessage, Mta, ReplySlot, Sta
from repro.com.guids import clsid_for, iid_for
from repro.com.interfaces import IUNKNOWN, ComInterface, ComObject
from repro.com.orpc import ObjectIdentity, Proxy, invoke_through_channel
from repro.com.runtime import ClassFactory, ComRuntime

__all__ = [
    "Apartment",
    "CallMessage",
    "ClassFactory",
    "ComInterface",
    "ComObject",
    "ComRuntime",
    "IUNKNOWN",
    "Mta",
    "ObjectIdentity",
    "Proxy",
    "ReplySlot",
    "Sta",
    "clsid_for",
    "iid_for",
    "invoke_through_channel",
]
