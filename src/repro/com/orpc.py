"""The ORPC channel: proxies, dispatch, probes, and channel hooks.

The channel is where the paper's COM story happens:

- instrumented **proxies** fire the stub start/end probes (probes 1/4);
- the **stub-manager dispatch** inside the target apartment fires the
  skeleton start/end probes (probes 2/3);
- the FTL rides the call message — COM's ORPC channel-hook extension
  point — crossing apartments, processes and (simulated) machines;
- with ``causality_hooks=True`` the channel saves the dispatching
  thread's current FTL before an incoming call and restores it after —
  "only a very limited amount of instrumentation before and after call
  sending and dispatching is required to the COM infrastructure"
  (Section 2.2). With hooks off, STA nested pumping mingles chains,
  which the analyzer then reports as abnormal events.
"""

from __future__ import annotations

import copy
from typing import Any

from repro.com.apartments import Apartment, CallMessage, ReplySlot
from repro.com.interfaces import ComInterface, ComObject
from repro.core.events import Domain
from repro.core.records import OperationInfo
from repro.errors import ComError, ComponentCrash
from repro.telemetry.metrics import NULL_COUNTER
from repro.telemetry.runtime import metrics_binder

# Framework self-metrics (no-ops until repro.telemetry.enable()).
_CALLS = {"direct": NULL_COUNTER, "channel": NULL_COUNTER}
_DISPATCHES = NULL_COUNTER
_DISPATCH_ERRORS = NULL_COUNTER


@metrics_binder
def _bind_metrics(registry) -> None:
    global _DISPATCHES, _DISPATCH_ERRORS
    if registry is None:
        _CALLS["direct"] = _CALLS["channel"] = NULL_COUNTER
        _DISPATCHES = NULL_COUNTER
        _DISPATCH_ERRORS = NULL_COUNTER
        return
    calls = registry.counter(
        "repro_orpc_calls_total",
        "COM ORPC proxy calls, by path (direct = same apartment).",
        labels=("path",),
    )
    _CALLS["direct"] = calls.labels("direct")
    _CALLS["channel"] = calls.labels("channel")
    _DISPATCHES = registry.counter(
        "repro_orpc_dispatches_total",
        "Server-side ORPC stub-manager dispatches.",
    )
    _DISPATCH_ERRORS = registry.counter(
        "repro_orpc_dispatch_errors_total",
        "ORPC dispatches whose implementation raised an exception.",
    )


class ObjectIdentity:
    """Server-side identity of one exported object."""

    def __init__(self, obj: ComObject, apartment: Apartment, runtime):
        self.obj = obj
        self.apartment = apartment
        self.runtime = runtime

    @property
    def object_id(self) -> str:
        return f"{self.runtime.process.name}.{self.obj.instance_id}"


class Proxy:
    """Client-side interface pointer to an object in another apartment."""

    def __init__(
        self,
        identity: ObjectIdentity,
        interface: ComInterface,
        client_runtime,
    ):
        self._identity = identity
        self._interface = interface
        self._client_runtime = client_runtime

    @property
    def interface(self) -> ComInterface:
        return self._interface

    def query_interface(self, interface: ComInterface) -> "Proxy":
        if not self._identity.obj.supports(interface):
            from repro.errors import InterfaceNotSupported

            raise InterfaceNotSupported(
                f"{type(self._identity.obj).__name__} does not support {interface.name}"
            )
        return Proxy(self._identity, interface, self._client_runtime)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in self._interface.methods:
            raise AttributeError(
                f"{self._interface.name} has no method {name!r}"
            )

        def call(*args, **kwargs):
            return invoke_through_channel(
                self._client_runtime, self._identity, self._interface, name, args, kwargs
            )

        call.__name__ = name
        return call

    def __repr__(self) -> str:
        return f"<proxy {self._interface.name} -> {self._identity.object_id}>"


def _op_info(identity: ObjectIdentity, interface: ComInterface, method: str) -> OperationInfo:
    return OperationInfo(
        interface=interface.name,
        operation=method,
        object_id=identity.object_id,
        component=identity.obj.component,
        domain=Domain.COM,
    )


def invoke_through_channel(
    client_runtime,
    identity: ObjectIdentity,
    interface: ComInterface,
    method: str,
    args: tuple,
    kwargs: dict,
) -> Any:
    """One synchronous ORPC call: proxy side.

    Same-apartment calls are direct (COM semantics: no marshalling when
    the caller already lives in the object's apartment).
    """
    apartment = identity.apartment
    monitor = client_runtime.process.monitor if client_runtime.instrumented else None
    op = _op_info(identity, interface, method)

    if apartment.hosts_current_thread():
        # Direct call within the apartment — degenerate probe pairs, like
        # the CORBA collocated case.
        _CALLS["direct"].inc()
        if monitor is not None:
            stub_ctx, skel_ctx = monitor.collocated_call_start(op)
            try:
                return getattr(identity.obj, method)(*args, **kwargs)
            finally:
                monitor.collocated_call_end(stub_ctx, skel_ctx)
        return getattr(identity.obj, method)(*args, **kwargs)

    # Probe 1: stub start (client side of the channel).
    _CALLS["channel"].inc()
    ctx = monitor.stub_start(op) if monitor is not None else None

    server_runtime = identity.runtime
    marshalled_args = copy.deepcopy(args)
    marshalled_kwargs = copy.deepcopy(kwargs)

    def dispatch(message: CallMessage):
        return _dispatch_on_server(
            server_runtime, identity, interface, method,
            marshalled_args, marshalled_kwargs, message.ftl,
        )

    slot = ReplySlot()
    caller_apartment = client_runtime.apartment_of_current_thread()
    message = CallMessage(
        dispatch=dispatch,
        reply_slot=slot,
        reply_apartment=caller_apartment,
        ftl=ctx.request_ftl_payload if ctx is not None else None,
    )
    apartment.post(message)

    # Wait — on an STA thread this pumps nested dispatches (the hazard).
    if caller_apartment is not None:
        caller_apartment.wait_for_reply(slot, client_runtime.call_timeout)
    else:
        if not slot.done.wait(client_runtime.call_timeout):
            raise ComError("outbound COM call timed out")

    # Probe 4: stub end (reads the thread's FTL from TSS — mingles when
    # hooks are off and the pump dispatched another chain meanwhile).
    if monitor is not None:
        monitor.stub_end(ctx, slot.ftl)
    if slot.error is not None:
        raise slot.error
    return copy.deepcopy(slot.value)


def _dispatch_on_server(
    server_runtime,
    identity: ObjectIdentity,
    interface: ComInterface,
    method: str,
    args: tuple,
    kwargs: dict,
    ftl: bytes | None,
):
    """Server side of the channel: stub-manager dispatch with probes 2/3."""
    monitor = server_runtime.process.monitor if server_runtime.instrumented else None
    op = _op_info(identity, interface, method)
    saved_ftl = None
    hooks = server_runtime.causality_hooks and monitor is not None
    if hooks:
        # Channel hook, dispatch enter: save the thread's current FTL so a
        # nested dispatch cannot mingle the chain being pumped over.
        saved_ftl = monitor.current_ftl()
    skel_ctx = monitor.skel_start(op, ftl) if monitor is not None else None
    _DISPATCHES.inc()
    error: BaseException | None = None
    value: Any = None
    try:
        hook = server_runtime.process.fault_hook
        if hook is not None:
            hook.on_dispatch(interface.name, method)
        value = getattr(identity.obj, method)(*args, **kwargs)
    except ComponentCrash as crash:
        # Injected component death mid-call: the skeleton-end probe never
        # fires (the component is gone), but the apartment thread — which
        # models the *host* process's message pump — survives and reports
        # the death to the caller as a channel error.
        _DISPATCH_ERRORS.inc()
        if hooks and saved_ftl is not None:
            monitor.bind_ftl(saved_ftl)
        return None, ComError(f"server component crashed: {crash}"), None
    except BaseException as exc:  # noqa: BLE001 — forwarded to the caller
        error = exc
        _DISPATCH_ERRORS.inc()
    reply_ftl = monitor.skel_end(skel_ctx) if monitor is not None else None
    if hooks and saved_ftl is not None:
        # Channel hook, dispatch exit: restore the interrupted chain.
        monitor.bind_ftl(saved_ftl)
    return value, error, reply_ftl
