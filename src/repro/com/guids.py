"""GUID/IID utilities for the COM-like runtime.

Interface identifiers are deterministic (name-derived UUID5-style), so a
rebuilt system keeps stable IIDs — convenient for tests and logs.
"""

from __future__ import annotations

import hashlib
import uuid

_NAMESPACE = uuid.UUID("6ba7b811-9dad-11d1-80b4-00c04fd430c8")  # RFC 4122 URL ns


def iid_for(interface_name: str) -> str:
    """Deterministic IID for an interface name, in registry format."""
    digest = hashlib.sha1(_NAMESPACE.bytes + interface_name.encode("utf-8")).digest()
    derived = uuid.UUID(bytes=digest[:16], version=5)
    return "{" + str(derived).upper() + "}"


def clsid_for(class_name: str) -> str:
    """Deterministic CLSID for a coclass name."""
    return iid_for(f"coclass:{class_name}")
