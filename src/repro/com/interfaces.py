"""COM interface declarations and the IUnknown-like object model.

A :class:`ComInterface` declares a named method set with a deterministic
IID. Component objects list the interfaces they implement; proxies are
obtained per interface via ``QueryInterface``, exactly restricting the
callable surface — the COM discipline the paper's embedded infrastructure
follows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.com.guids import iid_for
from repro.errors import ComError, InterfaceNotSupported


@dataclass(frozen=True)
class ComInterface:
    """One COM interface: a name plus its method set."""

    name: str
    methods: tuple[str, ...]

    def __post_init__(self):
        if not self.name:
            raise ComError("interface name must be non-empty")
        if not self.methods:
            raise ComError(f"interface {self.name} declares no methods")
        if len(set(self.methods)) != len(self.methods):
            raise ComError(f"interface {self.name} has duplicate methods")

    @property
    def iid(self) -> str:
        return iid_for(self.name)


#: Every COM object implicitly supports IUnknown.
IUNKNOWN = ComInterface("IUnknown", ("query_interface", "add_ref", "release"))

_instance_counter = itertools.count(1)


class ComObject:
    """Base class for COM component objects.

    Subclasses set ``implements`` to the interfaces they expose and define
    the corresponding methods. Reference counting is tracked faithfully
    (``add_ref``/``release``) though the simulation never frees objects.
    """

    implements: tuple[ComInterface, ...] = ()

    def __init__(self):
        self._refcount = 1
        self.instance_id = f"com-{next(_instance_counter)}"
        for interface in self.implements:
            for method in interface.methods:
                if not callable(getattr(self, method, None)):
                    raise ComError(
                        f"{type(self).__name__} declares {interface.name} but does"
                        f" not implement {method!r}"
                    )

    # -- IUnknown -------------------------------------------------------

    def supports(self, interface: ComInterface) -> bool:
        return interface == IUNKNOWN or interface in self.implements

    def query_interface(self, interface: ComInterface) -> "ComObject":
        if not self.supports(interface):
            raise InterfaceNotSupported(
                f"{type(self).__name__} does not support {interface.name} ({interface.iid})"
            )
        self.add_ref()
        return self

    def add_ref(self) -> int:
        self._refcount += 1
        return self._refcount

    def release(self) -> int:
        if self._refcount <= 0:
            raise ComError("release() below zero refcount")
        self._refcount -= 1
        return self._refcount

    @property
    def component(self) -> str:
        return type(self).__name__
