"""Apartments: the COM threading model.

Two apartment kinds, as in COM:

**STA (single-threaded apartment)** — one dedicated thread runs a message
loop; every call into the apartment's objects executes on that thread.
When code already running on the STA thread makes a *blocking outbound
call*, the thread cannot simply block — it must keep pumping the message
loop (a modal wait), or the apartment would deadlock on reentrant calls.
This pumping is exactly what breaks the paper's observation O1: "the
apartment thread T can switch to serve another incoming call C2 when the
call C1 that T is serving issues an outbound call C3 and suffers
blocking" (Section 2.2). Without extra runtime instrumentation the
thread-specific FTL is overwritten mid-call and causal chains mingle.

**MTA (multi-threaded apartment)** — a small pool of threads dispatches
incoming calls; outbound calls block their thread outright (no pumping),
so O1 holds and no extra instrumentation is needed.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ComError
from repro.telemetry.metrics import NULL_COUNTER, NULL_GAUGE
from repro.telemetry.runtime import metrics_binder

# Framework self-metrics (no-ops until repro.telemetry.enable()).
_POSTED = {"sta": NULL_COUNTER, "mta": NULL_COUNTER}
_QUEUE_DEPTH = {"sta": NULL_GAUGE, "mta": NULL_GAUGE}
_NESTED_DISPATCH = NULL_COUNTER


@metrics_binder
def _bind_metrics(registry) -> None:
    global _NESTED_DISPATCH
    if registry is None:
        _POSTED["sta"] = _POSTED["mta"] = NULL_COUNTER
        _QUEUE_DEPTH["sta"] = NULL_GAUGE
        _QUEUE_DEPTH["mta"] = NULL_GAUGE
        _NESTED_DISPATCH = NULL_COUNTER
        return
    posted = registry.counter(
        "repro_apartment_posted_total",
        "Call messages posted to apartment inboxes, by apartment kind.",
        labels=("kind",),
    )
    depth = registry.gauge(
        "repro_apartment_queue_depth",
        "Call messages currently queued in apartment inboxes, by kind.",
        labels=("kind",),
    )
    for kind in ("sta", "mta"):
        _POSTED[kind] = posted.labels(kind)
        _QUEUE_DEPTH[kind] = depth.labels(kind)
    _NESTED_DISPATCH = registry.counter(
        "repro_sta_nested_dispatch_total",
        "Dispatches pumped inside an STA modal wait (the chain-mingling"
        " hazard window of Section 2.2).",
    )


@dataclass
class ReplySlot:
    """Completion slot for one outbound call."""

    done: threading.Event = field(default_factory=threading.Event)
    value: Any = None
    error: BaseException | None = None
    ftl: bytes | None = None

    def complete(self, value: Any, error: BaseException | None, ftl: bytes | None) -> None:
        self.value = value
        self.error = error
        self.ftl = ftl
        self.done.set()


@dataclass
class CallMessage:
    """One ORPC request posted to an apartment."""

    dispatch: Callable[["CallMessage"], tuple[Any, BaseException | None, bytes | None]]
    reply_slot: ReplySlot | None
    #: Apartment to wake when the reply completes (STA modal waits).
    reply_apartment: "Apartment | None"
    ftl: bytes | None = None
    payload: Any = None


_WAKEUP = object()


class Apartment:
    """Common apartment interface."""

    name = "apartment"

    def post(self, message: CallMessage) -> None:
        raise NotImplementedError

    def wait_for_reply(self, slot: ReplySlot, timeout: float) -> None:
        """Block the calling thread until the slot completes."""
        if not slot.done.wait(timeout):
            raise ComError("outbound COM call timed out")

    def wakeup(self) -> None:
        """Nudge a modal wait (no-op outside STAs)."""

    def hosts_current_thread(self) -> bool:
        return False

    def shutdown(self) -> None:
        raise NotImplementedError


class Sta(Apartment):
    """Single-threaded apartment with a pumping message loop."""

    name = "sta"

    def __init__(self, process, label: str, timeout: float = 30.0):
        self.process = process
        self.label = label
        self.timeout = timeout
        self._inbox: "queue.Queue[CallMessage | object | None]" = queue.Queue()
        self._stopping = False
        self._thread = process.spawn_thread(self._message_loop, name=f"sta-{label}")

    def post(self, message: CallMessage) -> None:
        if self._stopping:
            raise ComError(f"STA {self.label} is shut down")
        _POSTED["sta"].inc()
        _QUEUE_DEPTH["sta"].inc()
        self._inbox.put(message)

    def wakeup(self) -> None:
        self._inbox.put(_WAKEUP)

    def hosts_current_thread(self) -> bool:
        return threading.current_thread() is self._thread

    # ------------------------------------------------------------------

    def _message_loop(self) -> None:
        while not self._stopping:
            message = self._inbox.get()
            if message is None:
                return
            if message is _WAKEUP:
                continue
            _QUEUE_DEPTH["sta"].dec()
            self._dispatch(message)

    def _dispatch(self, message: CallMessage) -> None:
        value, error, ftl = message.dispatch(message)
        if message.reply_slot is not None:
            message.reply_slot.complete(value, error, ftl)
            if message.reply_apartment is not None:
                message.reply_apartment.wakeup()

    def wait_for_reply(self, slot: ReplySlot, timeout: float) -> None:
        """Modal wait: pump incoming calls while the reply is pending.

        Runs only on the STA thread; this nested dispatching is the
        chain-mingling hazard the channel hooks repair.
        """
        if not self.hosts_current_thread():
            super().wait_for_reply(slot, timeout)
            return
        while not slot.done.is_set():
            try:
                message = self._inbox.get(timeout=timeout)
            except queue.Empty:
                raise ComError("outbound COM call timed out while pumping") from None
            if message is None:
                self._stopping = True
                raise ComError(f"STA {self.label} shut down during modal wait")
            if message is _WAKEUP:
                continue
            _QUEUE_DEPTH["sta"].dec()
            _NESTED_DISPATCH.inc()
            self._dispatch(message)  # nested dispatch of another chain

    def shutdown(self) -> None:
        self._stopping = True
        self._inbox.put(None)


class Mta(Apartment):
    """Multi-threaded apartment: a worker pool, no pumping."""

    name = "mta"

    def __init__(self, process, label: str = "mta", size: int = 4):
        if size < 1:
            raise ComError("MTA pool size must be >= 1")
        self.process = process
        self.label = label
        self._inbox: "queue.Queue[CallMessage | None]" = queue.Queue()
        self._stopping = False
        self._threads = [
            process.spawn_thread(self._worker, name=f"mta-{label}-{i}") for i in range(size)
        ]

    def post(self, message: CallMessage) -> None:
        if self._stopping:
            raise ComError(f"MTA {self.label} is shut down")
        _POSTED["mta"].inc()
        _QUEUE_DEPTH["mta"].inc()
        self._inbox.put(message)

    def hosts_current_thread(self) -> bool:
        return threading.current_thread() in self._threads

    def _worker(self) -> None:
        while True:
            message = self._inbox.get()
            if message is None:
                return
            _QUEUE_DEPTH["mta"].dec()
            value, error, ftl = message.dispatch(message)
            if message.reply_slot is not None:
                message.reply_slot.complete(value, error, ftl)
                if message.reply_apartment is not None:
                    message.reply_apartment.wakeup()

    def shutdown(self) -> None:
        self._stopping = True
        for _ in self._threads:
            self._inbox.put(None)
