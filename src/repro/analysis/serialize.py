"""DSCG serialization for interchange and archival.

Reconstructed graphs can be exported to a self-contained JSON document
(structure + identities + annotations, no raw probe records) and loaded
back into lightweight node objects — enough for viewers, diffing and the
CLI, without re-reading the monitoring database.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.cpu import CpuAnalysis
from repro.analysis.dscg import CallNode, ChainTree, Dscg
from repro.analysis.latency import end_to_end_latency
from repro.core.events import CallKind, Domain


def _node_to_dict(node: CallNode, cpu: CpuAnalysis | None) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "interface": node.interface,
        "operation": node.operation,
        "object_id": node.object_id,
        "component": node.component,
        "call_kind": node.call_kind.value,
        "collocated": node.collocated,
        "domain": node.domain.value,
        "oneway_side": node.oneway_side,
        "partial": node.partial,
        "children": [_node_to_dict(child, cpu) for child in node.children],
    }
    if node.forked_chain_uuid:
        payload["forked_chain_uuid"] = node.forked_chain_uuid
    latency = end_to_end_latency(node)
    if latency is not None:
        payload["latency_ns"] = latency
    if cpu is not None:
        self_cpu = cpu.self_cpu(node)
        if self_cpu is not None:
            payload["self_cpu_ns"] = self_cpu
        descendant = cpu.descendant_cpu(node)
        if descendant.by_processor:
            payload["descendant_cpu_ns"] = dict(descendant.by_processor)
    return payload


def dscg_to_json(dscg: Dscg, include_cpu: bool = True, indent: int = 2) -> str:
    """Serialize a DSCG (with annotations) to a JSON document."""
    cpu = CpuAnalysis(dscg) if include_cpu else None
    document = {
        "format": "repro-dscg",
        "version": 1,
        "stats": dscg.stats(),
        "chains": [
            {
                "chain_uuid": tree.chain_uuid,
                "parent_chain_uuid": tree.parent_chain_uuid,
                "abnormal": [
                    {"event_seq": a.event_seq, "reason": a.reason}
                    for a in tree.abnormal
                ],
                "roots": [_node_to_dict(root, cpu) for root in tree.roots],
            }
            for tree in dscg.chains.values()
        ],
    }
    return json.dumps(document, indent=indent)


def _node_from_dict(payload: dict[str, Any], chain_uuid: str) -> CallNode:
    node = CallNode(
        interface=payload["interface"],
        operation=payload["operation"],
        object_id=payload["object_id"],
        component=payload["component"],
        chain_uuid=chain_uuid,
        call_kind=CallKind(payload["call_kind"]),
        collocated=payload["collocated"],
        domain=Domain(payload["domain"]),
        oneway_side=payload.get("oneway_side", ""),
        forked_chain_uuid=payload.get("forked_chain_uuid"),
        partial=payload.get("partial", False),
    )
    node.latency_ns = payload.get("latency_ns")
    node.self_cpu_ns = payload.get("self_cpu_ns")
    for child_payload in payload["children"]:
        node.add_child(_node_from_dict(child_payload, chain_uuid))
    return node


def dscg_from_json(document: str) -> Dscg:
    """Load a serialized DSCG (structure + annotations; no probe records)."""
    payload = json.loads(document)
    if payload.get("format") != "repro-dscg":
        raise ValueError("not a repro DSCG document")
    dscg = Dscg()
    for chain_payload in payload["chains"]:
        tree = ChainTree(chain_uuid=chain_payload["chain_uuid"])
        tree.parent_chain_uuid = chain_payload.get("parent_chain_uuid")
        for root_payload in chain_payload["roots"]:
            tree.roots.append(_node_from_dict(root_payload, tree.chain_uuid))
        dscg.add_chain(tree)
    dscg.link_chains()
    return dscg
