"""System-wide CPU consumption characterization (Section 3.2).

Three phases, following the paper:

1. **Self (exclusive) CPU** of each invocation F:
   ``SC_F = (P(F,3,start) − P(F,2,end)) − Σ_i (P(i,4,end) − P(i,1,start))``
   — the CPU the server thread charged between the skeleton start and end
   probes, minus the CPU windows spanned by F's immediate child calls
   (probe 1 start to probe 4 end, read on F's own thread, which is the
   client thread of each child).

2. **Descendent (inherited) CPU**:
   ``DC_F = Σ_{f ∈ immediate children} (SC_f + DC_f)`` — represented as a
   vector ``<C1 … CM>`` over processor types, because children may execute
   on different processor families.

3. The CCSG synthesis lives in :mod:`repro.analysis.ccsg`.

Oneway forks: the stub side of a oneway call has no skeleton probes in
its own chain; with ``include_oneway_forks=True`` (default) the forked
chain's inclusive CPU is charged to the forking node's descendent vector,
so CPU propagation crosses chain boundaries the same way causality does.
Hosts without per-thread CPU counters (the paper's VxWorks case) yield
``None`` self-CPU, which propagates as an uncovered contribution.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.events import CallKind, TracingEvent
from repro.analysis.dscg import CallNode, Dscg


def _child_cpu_window(child: CallNode) -> int | None:
    """CPU charged to the caller's thread across one child call."""
    start = child.records.get(TracingEvent.STUB_START)
    end = child.records.get(TracingEvent.STUB_END)
    if start is None or end is None:
        return None
    if start.cpu_start is None or end.cpu_end is None:
        return None
    return end.cpu_end - start.cpu_start


def self_cpu(node: CallNode) -> int | None:
    """SC_F in nanoseconds; None when the readings are unavailable."""
    skel_start = node.records.get(TracingEvent.SKEL_START)
    skel_end = node.records.get(TracingEvent.SKEL_END)
    if skel_start is None or skel_end is None:
        return None
    if skel_start.cpu_end is None or skel_end.cpu_start is None:
        return None
    total = skel_end.cpu_start - skel_start.cpu_end
    for child in node.children:
        window = _child_cpu_window(child)
        if window is not None:
            total -= window
    return max(total, 0)


def annotate_chain_self_cpu(tree) -> None:
    """Attach ``self_cpu_ns`` to every node of one chain tree.

    SC_F reads only the node's skeleton probes and its immediate
    children's stub windows — all chain-local — so the sharded analyzer
    computes it per worker. Descendent vectors (DC_F) cross oneway chain
    boundaries and stay in :class:`CpuAnalysis`.
    """
    for node in tree.walk():
        node.self_cpu_ns = self_cpu(node)


@dataclass
class CpuVector:
    """CPU nanoseconds per processor type, with coverage accounting."""

    by_processor: dict[str, int] = field(default_factory=dict)
    #: Number of invocations whose CPU could not be read (e.g. VxWorks).
    uncovered: int = 0

    def add(self, processor_type: str | None, ns: int | None) -> None:
        if ns is None or processor_type is None:
            self.uncovered += 1
            return
        self.by_processor[processor_type] = self.by_processor.get(processor_type, 0) + ns

    def merge(self, other: "CpuVector") -> None:
        for processor, ns in other.by_processor.items():
            self.by_processor[processor] = self.by_processor.get(processor, 0) + ns
        self.uncovered += other.uncovered

    def total_ns(self) -> int:
        return sum(self.by_processor.values())

    def copy(self) -> "CpuVector":
        return CpuVector(by_processor=dict(self.by_processor), uncovered=self.uncovered)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self.by_processor.items()))
        return f"CpuVector({body}, uncovered={self.uncovered})"


class CpuAnalysis:
    """Memoized SC/DC computation over one DSCG."""

    def __init__(self, dscg: Dscg, include_oneway_forks: bool = True):
        self.dscg = dscg
        self.include_oneway_forks = include_oneway_forks
        self._self_cpu: dict[int, int | None] = {}
        self._descendant: dict[int, CpuVector] = {}

    # ------------------------------------------------------------------

    def self_cpu(self, node: CallNode) -> int | None:
        key = id(node)
        if key not in self._self_cpu:
            self._self_cpu[key] = self_cpu(node)
        return self._self_cpu[key]

    def descendant_cpu(self, node: CallNode) -> CpuVector:
        """DC_F as a per-processor-type vector."""
        key = id(node)
        cached = self._descendant.get(key)
        if cached is not None:
            return cached
        vector = CpuVector()
        for child in node.children:
            oneway_stub = (
                child.call_kind is CallKind.ONEWAY and child.oneway_side == "stub"
            )
            if not oneway_stub:
                # Oneway stub-side children have no skeleton probes here;
                # their execution is accounted through the forked chain.
                vector.add(child.server_processor_type, self.self_cpu(child))
            vector.merge(self.descendant_cpu(child))
        # A oneway stub-side node owns the chain it forked: the fork's
        # inclusive CPU lands in this node's DC and is inherited upward
        # through the ordinary child sums.
        vector.merge(self._forked_cpu(node))
        self._descendant[key] = vector
        return vector

    def _forked_cpu(self, node: CallNode) -> CpuVector:
        """Inclusive CPU of the chain forked by a oneway stub-side node."""
        vector = CpuVector()
        if not self.include_oneway_forks or not node.forked_chain_uuid:
            return vector
        child_chain = self.dscg.chains.get(node.forked_chain_uuid)
        if child_chain is None:
            return vector
        for root in child_chain.roots:
            vector.add(root.server_processor_type, self.self_cpu(root))
            vector.merge(self.descendant_cpu(root))
        return vector

    def inclusive_cpu(self, node: CallNode) -> CpuVector:
        """SC_F + DC_F (the paper's total/inherited CPU of a function)."""
        vector = self.descendant_cpu(node).copy()
        vector.add(node.server_processor_type, self.self_cpu(node))
        return vector

    # ------------------------------------------------------------------

    def annotate(self) -> None:
        """Attach ``self_cpu_ns`` and ``descendant_cpu`` to every node."""
        for node in self.dscg.walk():
            node.self_cpu_ns = self.self_cpu(node)
            node.descendant_cpu = self.descendant_cpu(node)

    def total_by_processor(self) -> CpuVector:
        """Sum of self CPU over every node, grouped by processor type.

        Equals the root-level inclusive totals when chains are well formed
        — the conservation invariant the property tests check.
        """
        vector = CpuVector()
        for node in self.dscg.walk():
            if self._accountable(node):
                vector.add(node.server_processor_type, self.self_cpu(node))
        return vector

    def per_function_self_cpu(self) -> dict[str, CpuVector]:
        result: dict[str, CpuVector] = defaultdict(CpuVector)
        for node in self.dscg.walk():
            if self._accountable(node):
                result[node.function].add(
                    node.server_processor_type, self.self_cpu(node)
                )
        return dict(result)

    @staticmethod
    def _accountable(node: CallNode) -> bool:
        """Oneway stub-side nodes execute nothing themselves."""
        return not (node.call_kind is CallKind.ONEWAY and node.oneway_side == "stub")
