"""Application-semantics reports (parameters, results, exceptions).

The probes can capture "application semantics about each function call
behavior (input/output/return parameter, thrown exceptions)"; the paper
notes this is "primarily useful for application debugging and testing"
(Section 2.1). This module summarizes what was captured in SEMANTICS
monitor mode.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.events import TracingEvent
from repro.core.records import ProbeRecord


@dataclass
class FunctionSemantics:
    """Semantic summary for one function."""

    function: str
    invocations: int = 0
    ok: int = 0
    user_exceptions: int = 0
    system_exceptions: int = 0
    sample_args: list[list[str]] = field(default_factory=list)
    exception_samples: list[str] = field(default_factory=list)

    @property
    def failure_rate(self) -> float:
        total = self.ok + self.user_exceptions + self.system_exceptions
        if not total:
            return 0.0
        return (self.user_exceptions + self.system_exceptions) / total


def semantics_report(
    records: list[ProbeRecord], max_samples: int = 5
) -> dict[str, FunctionSemantics]:
    """Aggregate semantics payloads per function."""
    report: dict[str, FunctionSemantics] = {}
    for record in records:
        if record.semantics is None:
            continue
        entry = report.get(record.function)
        if entry is None:
            entry = FunctionSemantics(function=record.function)
            report[record.function] = entry
        payload = record.semantics
        if record.event is TracingEvent.STUB_START:
            entry.invocations += 1
            if "args" in payload and len(entry.sample_args) < max_samples:
                entry.sample_args.append(list(payload["args"]))
        elif record.event is TracingEvent.SKEL_END:
            status = payload.get("status", "ok")
            if status == "ok":
                entry.ok += 1
            elif status == "user_exception":
                entry.user_exceptions += 1
                if len(entry.exception_samples) < max_samples:
                    entry.exception_samples.append(payload.get("exception", ""))
            else:
                entry.system_exceptions += 1
                if len(entry.exception_samples) < max_samples:
                    entry.exception_samples.append(payload.get("exception", ""))
    return report


def exception_hotspots(
    report: dict[str, FunctionSemantics], threshold: float = 0.0
) -> list[FunctionSemantics]:
    """Functions sorted by failure rate (debugging aid)."""
    entries = [e for e in report.values() if e.failure_rate > threshold]
    entries.sort(key=lambda e: e.failure_rate, reverse=True)
    return entries
