"""Sharded parallel DSCG reconstruction.

The analyzer is embarrassingly parallel by construction: each Function
UUID's chain reconstructs from its own sorted event records (the Figure-4
state machine never looks across chains), and the chain-local annotations
— end-to-end latency L(F) and self CPU SC_F — read only records inside
one chain. Concurrency-preserving monitoring work (Nazarpour et al.)
makes the same observation for multi-threaded CBSs: per-trace analysis
need not serialize.

Sharding model: the sorted chain-uuid space is split into contiguous
ranges, one per worker, each handed to the backend as a bounded
``chains_for_run(first_chain, last_chain)`` scan. On SQLite that is a
fused index scan (``chain_uuid BETWEEN lo AND hi ORDER BY chain_uuid,
event_seq, id``) over a per-thread read connection (WAL journal on
file-backed databases, so readers never contend; ``:memory:`` falls back
to the serialized shared connection). On the segment store the chain
groups of a sealed segment are byte-contiguous and sorted, so each shard
decodes a disjoint ``mmap`` range — backends that benefit from
preparation (the store compacts its spools) expose a
``prepare_sharded_scan(run_id)`` hook that runs once before the pool
starts. The merge is deterministic: shards are consumed in range order,
so the resulting :class:`Dscg` is byte-identical to a serial
reconstruction — the equivalence the property tests assert.

Worker failures are never swallowed: the first shard exception propagates
out of :func:`reconstruct_sharded` (chains are either all present or the
call raises).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

import repro.analysis.statemachine as statemachine
from repro.analysis.cpu import annotate_chain_self_cpu
from repro.analysis.dscg import ChainTree, Dscg
from repro.analysis.latency import annotate_chain_latency

if TYPE_CHECKING:
    from repro.store.backend import StorageBackend
    from repro.store.query import ScanPredicate

#: Upper bound on the auto-selected pool: analyzer shards are CPU-heavy,
#: so there is no point outnumbering the cores by much.
_MAX_AUTO_WORKERS = 8


def default_workers() -> int:
    """Pool size when the caller asks for automatic sharding."""
    return max(1, min(_MAX_AUTO_WORKERS, os.cpu_count() or 1))


def _env_worker_ceiling() -> int | None:
    """Parse the ``REPRO_ANALYZER_WORKERS`` override (None if unset/bad)."""
    raw = os.environ.get("REPRO_ANALYZER_WORKERS", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None


def effective_workers(requested: int | None, oversubscribe: bool = False) -> int:
    """Pool width actually used for a requested worker count.

    Normally the request is clamped to the core count (threads beyond it
    only contend on the GIL). ``REPRO_ANALYZER_WORKERS`` replaces that
    ceiling, letting CI exercise real multi-shard pools on one-core
    containers; ``oversubscribe=True`` skips the clamp entirely.
    """
    if requested is None or requested <= 0:
        requested = default_workers()
    if oversubscribe:
        return requested
    ceiling = _env_worker_ceiling()
    if ceiling is None:
        ceiling = os.cpu_count() or 1
    return max(1, min(requested, ceiling))


def shard_bounds(
    chain_uuids: Sequence[str], workers: int
) -> list[tuple[str, str]]:
    """Split sorted chain uuids into contiguous inclusive (lo, hi) ranges.

    Ranges partition the input: concatenating each range's chains in
    order reproduces the full sorted sequence, which is what keeps the
    parallel merge deterministic.
    """
    count = len(chain_uuids)
    if count == 0:
        return []
    workers = max(1, min(workers, count))
    base, extra = divmod(count, workers)
    bounds: list[tuple[str, str]] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        bounds.append((chain_uuids[start], chain_uuids[start + size - 1]))
        start += size
    return bounds


def _reconstruct_shard(
    database: "StorageBackend",
    run_id: str,
    bounds: tuple[str, str],
    annotate: bool,
    predicate: "ScanPredicate | None" = None,
) -> list[ChainTree]:
    """Worker body: rebuild (and annotate) one contiguous uuid range."""
    first, last = bounds
    trees: list[ChainTree] = []
    for chain_uuid, records in database.chains_for_run(
        run_id, first_chain=first, last_chain=last, predicate=predicate
    ):
        tree = statemachine.reconstruct_chain(chain_uuid, records)
        if annotate:
            annotate_chain_latency(tree)
            annotate_chain_self_cpu(tree)
        trees.append(tree)
    return trees


def reconstruct_sharded(
    database: "StorageBackend",
    run_id: str,
    workers: int | None = None,
    annotate: bool = False,
    oversubscribe: bool = False,
    predicate: "ScanPredicate | None" = None,
) -> Dscg:
    """Parallel drop-in for :func:`repro.analysis.reconstruct`.

    Produces a DSCG identical (including chain iteration order and
    serialized JSON) to the serial single-scan reconstruction. A
    ``predicate`` is pushed into every shard's bounded scan; chains whose
    records are all filtered out simply do not appear, so the sharded
    predicated result matches the serial predicated one.

    The pool is sized ``min(workers, cpu_count)``: reconstruction is
    CPU-bound, so threads beyond the core count only add GIL contention
    and scheduler churn (on a one-core host ``workers=8`` degrades to
    the plain fused scan rather than running 8x slower). Pass
    ``oversubscribe=True`` to force the requested width anyway.
    """
    workers = effective_workers(workers, oversubscribe)
    prepare = getattr(database, "prepare_sharded_scan", None)
    if prepare is not None:
        # Segment store: compact the run's spools so every shard becomes
        # a disjoint byte-range decode of one sealed segment.
        prepare(run_id)
    chain_uuids = database.unique_chain_uuids(run_id)
    bounds = shard_bounds(chain_uuids, workers)
    dscg = Dscg()
    if len(bounds) <= 1:
        # Nothing to shard — run the scan inline, skipping pool overhead.
        if bounds:
            dscg.add_chains(
                _reconstruct_shard(database, run_id, bounds[0], annotate, predicate)
            )
        dscg.link_chains()
        return dscg
    with ThreadPoolExecutor(
        max_workers=len(bounds), thread_name_prefix="repro-analyzer"
    ) as pool:
        futures = [
            pool.submit(
                _reconstruct_shard, database, run_id, shard, annotate, predicate
            )
            for shard in bounds
        ]
        # Consume in shard order (not completion order): the merged chain
        # sequence is then globally sorted by chain uuid, exactly like the
        # serial scan. result() re-raises the first worker failure.
        for future in futures:
            dscg.add_chains(future.result())
    dscg.link_chains()
    return dscg
