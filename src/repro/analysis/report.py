"""Text report tables used by the benchmark harness and examples."""

from __future__ import annotations

from repro.analysis.completeness import loss_report
from repro.analysis.cpu import CpuAnalysis
from repro.analysis.dscg import Dscg
from repro.analysis.latency import latency_report
from repro.analysis.xmlview import split_sec_usec


def format_ns(ns: float) -> str:
    """Human-readable duration."""
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.3f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def format_sec_usec(ns: int) -> str:
    """The paper's ``[second, microsecond]`` rendering."""
    seconds, microseconds = split_sec_usec(ns)
    return f"[{seconds}, {microseconds}]"


def table(rows: list[list[str]], headers: list[str]) -> str:
    """Render an aligned monospace table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def dscg_summary(dscg: Dscg) -> str:
    """One-paragraph DSCG summary (the Figure-5 style statistics)."""
    stats = dscg.stats()
    return (
        f"DSCG: {stats['nodes']} invocation nodes in {stats['chains']} causal"
        f" chain(s); {stats['unique_methods']} unique methods,"
        f" {stats['unique_interfaces']} unique interfaces,"
        f" {stats['unique_components']} unique components,"
        f" {stats['unique_objects']} objects; max depth {stats['max_depth']};"
        f" {stats['oneway_links']} oneway fork(s);"
        f" {stats['abnormal_events']} abnormal event(s);"
        f" {stats['partial_nodes']} partial node(s)"
        f" in {stats['partial_chains']} chain(s)."
    )


def loss_summary(dscg: Dscg, collector_loss: dict | None = None) -> str:
    """Loss-accounting section: capture completeness plus collector loss.

    ``collector_loss`` is the ``extra["loss"]`` dict a resilient
    :class:`~repro.collector.collector.LogCollector` stored in the run's
    metadata, when available.
    """
    report = loss_report(dscg)
    lines = [
        f"Capture completeness: {report.complete_chains}/{report.chains}"
        f" chain(s) complete; {report.partial_nodes} partial node(s),"
        f" {report.missing_records} missing probe record(s),"
        f" {report.abnormal_events} abnormal event(s).",
    ]
    if report.partial_by_function:
        worst = sorted(
            report.partial_by_function.items(), key=lambda kv: (-kv[1], kv[0])
        )[:5]
        lines.append(
            "Most-affected functions: "
            + ", ".join(f"{fn} ({count})" for fn, count in worst)
            + "."
        )
    if collector_loss:
        failed = collector_loss.get("failed_drains") or []
        lines.append(
            "Collection: "
            f"{collector_loss.get('records_dropped_at_probe', 0)} record(s)"
            " dropped at the probe,"
            f" {collector_loss.get('records_lost_in_delivery', 0)} lost in"
            " delivery,"
            f" {collector_loss.get('records_uncollected', 0)} uncollected"
            f" ({len(failed)} failed drain(s):"
            f" {', '.join(failed) if failed else 'none'};"
            f" {collector_loss.get('drain_retries', 0)} retry/retries)."
        )
    return "\n".join(lines)


def latency_table(dscg: Dscg, limit: int = 20) -> str:
    """Per-function latency table sorted by total latency."""
    report = latency_report(dscg)
    entries = sorted(report.values(), key=lambda e: e.total_ns, reverse=True)[:limit]
    rows = [
        [
            entry.function,
            str(entry.count),
            format_ns(entry.mean_ns),
            format_ns(entry.min_ns),
            format_ns(entry.max_ns),
            format_ns(entry.total_ns),
        ]
        for entry in entries
    ]
    return table(rows, ["function", "calls", "mean", "min", "max", "total"])


def cpu_table(dscg: Dscg, cpu: CpuAnalysis | None = None, limit: int = 20) -> str:
    """Per-function self-CPU table, vectors flattened per processor."""
    if cpu is None:
        cpu = CpuAnalysis(dscg)
    per_function = cpu.per_function_self_cpu()
    entries = sorted(
        per_function.items(), key=lambda item: item[1].total_ns(), reverse=True
    )[:limit]
    rows = []
    for function, vector in entries:
        breakdown = ", ".join(
            f"{proc}: {format_sec_usec(ns)}" for proc, ns in sorted(vector.by_processor.items())
        )
        rows.append([function, format_ns(vector.total_ns()), breakdown or "(no data)"])
    return table(rows, ["function", "self CPU", "per processor [s, us]"])
