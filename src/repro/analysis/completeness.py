"""Chain-completeness accounting under lossy capture.

The Figure-4 reconstruction never refuses a record set: whatever faults
ate — dropped messages, crashed components, lossy probe delivery — the
analyzer salvages what remains and flags what it could not finish
(``CallNode.partial``, abnormal events). This module turns those flags
into one canonical loss report so a chaotic run's damage can be stated,
compared and (in the chaos matrix) asserted byte-identical across
replays of the same fault seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import CallKind, TracingEvent
from repro.analysis.dscg import CallNode, Dscg

_EXPECTED_SYNC = (
    TracingEvent.STUB_START,
    TracingEvent.SKEL_START,
    TracingEvent.SKEL_END,
    TracingEvent.STUB_END,
)
_EXPECTED_ONEWAY_STUB = (TracingEvent.STUB_START, TracingEvent.STUB_END)
_EXPECTED_ONEWAY_SKEL = (TracingEvent.SKEL_START, TracingEvent.SKEL_END)


def expected_events(node: CallNode) -> tuple[TracingEvent, ...]:
    """Which probe records a fully captured node of this shape carries."""
    if node.call_kind is CallKind.ONEWAY:
        if node.oneway_side == "skel":
            return _EXPECTED_ONEWAY_SKEL
        return _EXPECTED_ONEWAY_STUB
    return _EXPECTED_SYNC


def missing_events(node: CallNode) -> tuple[TracingEvent, ...]:
    """The probe records this node should have but does not."""
    return tuple(e for e in expected_events(node) if e not in node.records)


@dataclass
class LossReport:
    """What lossy capture cost one reconstructed run."""

    chains: int = 0
    partial_chains: int = 0
    nodes: int = 0
    partial_nodes: int = 0
    abnormal_events: int = 0
    missing_records: int = 0
    #: function -> count of partial invocations of it.
    partial_by_function: dict[str, int] = field(default_factory=dict)

    @property
    def complete_chains(self) -> int:
        return self.chains - self.partial_chains

    def to_dict(self) -> dict:
        """Canonical (sorted, JSON-ready) form for replay comparison."""
        return {
            "chains": self.chains,
            "complete_chains": self.complete_chains,
            "partial_chains": self.partial_chains,
            "nodes": self.nodes,
            "partial_nodes": self.partial_nodes,
            "abnormal_events": self.abnormal_events,
            "missing_records": self.missing_records,
            "partial_by_function": dict(sorted(self.partial_by_function.items())),
        }


def loss_report(dscg: Dscg) -> LossReport:
    """Account for every partial node and missing probe record in a DSCG.

    A chain counts as partial when any of its nodes is partial or it
    produced abnormal events; a node's missing records are counted
    against the probe set its shape implies (four for sync, two per side
    for oneway).
    """
    report = LossReport(chains=len(dscg.chains))
    for tree in dscg.chains.values():
        chain_partial = bool(tree.abnormal)
        report.abnormal_events += len(tree.abnormal)
        for node in tree.walk():
            report.nodes += 1
            if node.partial:
                chain_partial = True
                report.partial_nodes += 1
                report.partial_by_function[node.function] = (
                    report.partial_by_function.get(node.function, 0) + 1
                )
            report.missing_records += len(missing_events(node))
        if chain_partial:
            report.partial_chains += 1
    return report
