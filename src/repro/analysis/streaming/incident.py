"""Structured incident reports.

An :class:`IncidentReport` is the detector's unit of output: one
sustained latency anomaly on one (interface, operation), with the
causal ranking attached. Reports are plain data — JSON-serializable,
carrying no pids, thread ids or host-clock readings that vary between
replays — so that the same seed and record stream always produce the
same bytes (the CI determinism gate diffs two full replays).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CauseScore:
    """One ranked causal candidate inside an incident window.

    ``score = w_anomaly * anomaly + w_resource * resource_share +
    w_temporal * temporal_correlation`` — the spike-detector/ranker
    composition of RCA-style monitors, computed over the live DSCG
    instead of flat process metrics.
    """

    component: str
    function: str
    score: float
    anomaly: float
    resource_share: float
    temporal_correlation: float
    observations: int
    anomalous_observations: int
    self_ns_total: int

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "function": self.function,
            "score": round(self.score, 6),
            "anomaly": round(self.anomaly, 6),
            "resource_share": round(self.resource_share, 6),
            "temporal_correlation": round(self.temporal_correlation, 6),
            "observations": self.observations,
            "anomalous_observations": self.anomalous_observations,
            "self_ns_total": self.self_ns_total,
        }


@dataclass
class IncidentReport:
    """One detected incident with its causal ranking."""

    function: str
    opened_at_completion: int
    opened_at_record: int
    closed_at_completion: int
    closed_at_record: int
    trigger_z: float
    trigger_latency_ns: int
    baseline_median_ns: float
    baseline_mad_ns: float
    peak_z: float
    observations: int
    anomalous_observations: int
    closed_by: str  # "cooldown" | "finalize"
    implicated_chains: list[str] = field(default_factory=list)
    causes: list[CauseScore] = field(default_factory=list)

    @property
    def incident_id(self) -> str:
        """Deterministic id: a digest of what the incident is about."""
        basis = "|".join(
            (
                self.function,
                str(self.opened_at_record),
                ",".join(self.implicated_chains),
            )
        )
        return "inc-" + hashlib.sha1(basis.encode()).hexdigest()[:12]

    @property
    def root_cause(self) -> CauseScore | None:
        return self.causes[0] if self.causes else None

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "incident_id": self.incident_id,
            "function": self.function,
            "window": {
                "opened_at_completion": self.opened_at_completion,
                "opened_at_record": self.opened_at_record,
                "closed_at_completion": self.closed_at_completion,
                "closed_at_record": self.closed_at_record,
                "closed_by": self.closed_by,
            },
            "trigger": {
                "z": round(self.trigger_z, 6),
                "latency_ns": self.trigger_latency_ns,
                "baseline_median_ns": round(self.baseline_median_ns, 3),
                "baseline_mad_ns": round(self.baseline_mad_ns, 3),
            },
            "peak_z": round(self.peak_z, 6),
            "observations": self.observations,
            "anomalous_observations": self.anomalous_observations,
            "implicated_chains": list(self.implicated_chains),
            "causes": [cause.to_dict() for cause in self.causes],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def one_line(self) -> str:
        """Terse human-readable summary for ``--watch`` output."""
        cause = self.root_cause
        culprit = f"{cause.component} ({cause.function})" if cause else "<unranked>"
        return (
            f"incident {self.incident_id}: {self.function}"
            f" z={self.trigger_z:.1f}"
            f" latency={self.trigger_latency_ns / 1e6:.3f}ms"
            f" (baseline {self.baseline_median_ns / 1e6:.3f}ms)"
            f" -> root cause {culprit}"
        )


def incident_from_dict(data: dict) -> IncidentReport:
    """Rebuild a report from its :meth:`IncidentReport.to_dict` form."""
    window = data["window"]
    trigger = data["trigger"]
    return IncidentReport(
        function=data["function"],
        opened_at_completion=window["opened_at_completion"],
        opened_at_record=window["opened_at_record"],
        closed_at_completion=window["closed_at_completion"],
        closed_at_record=window["closed_at_record"],
        trigger_z=trigger["z"],
        trigger_latency_ns=trigger["latency_ns"],
        baseline_median_ns=trigger["baseline_median_ns"],
        baseline_mad_ns=trigger["baseline_mad_ns"],
        peak_z=data["peak_z"],
        observations=data["observations"],
        anomalous_observations=data["anomalous_observations"],
        closed_by=window["closed_by"],
        implicated_chains=list(data["implicated_chains"]),
        causes=[
            CauseScore(
                component=cause["component"],
                function=cause["function"],
                score=cause["score"],
                anomaly=cause["anomaly"],
                resource_share=cause["resource_share"],
                temporal_correlation=cause["temporal_correlation"],
                observations=cause["observations"],
                anomalous_observations=cause["anomalous_observations"],
                self_ns_total=cause["self_ns_total"],
            )
            for cause in data.get("causes", ())
        ],
    )


def incidents_from_json(text: str) -> list[IncidentReport]:
    """Load reports from an :func:`incidents_to_json` document (or a list)."""
    document = json.loads(text)
    entries = document["incidents"] if isinstance(document, dict) else document
    return [incident_from_dict(entry) for entry in entries]


def incidents_to_json(
    incidents: list[IncidentReport],
    run_id: str = "",
    extra: dict | None = None,
    indent: int = 2,
) -> str:
    """Canonical multi-incident JSON document (sorted keys, stable order)."""
    document = {
        "format": "repro-incidents",
        "version": 1,
        "run_id": run_id,
        "incident_count": len(incidents),
        "incidents": [incident.to_dict() for incident in incidents],
    }
    if extra:
        document.update(extra)
    return json.dumps(document, indent=indent, sort_keys=True)
