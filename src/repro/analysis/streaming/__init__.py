"""Streaming DSCG reconstruction, anomaly detection and causal ranking.

The offline analyzer reconstructs chains after the run completes; this
package runs the same Figure-4 state machine *while the system runs*:

- :class:`StreamingReconstructor` — an incremental DSCG state machine
  over the collector drain path (or any live record stream). On a
  fault-free completed stream its :meth:`~StreamingReconstructor.finalize`
  output is bit-identical to the batch analyzer's
  :func:`~repro.analysis.reconstruct` — both run through the shared
  :class:`~repro.analysis.statemachine.ChainBuilder` transitions.
- :class:`StreamingDetector` — rolling per-(interface, operation)
  latency baselines (windowed median/MAD), robust z-score spike
  detection with persistence filtering, and incident life-cycle
  management layered on top of the reconstructor.
- :class:`CausalRanker` — scores which component most likely caused an
  incident: anomaly x resource contribution x temporal correlation over
  the live chains (the spike-detector / ranker pipeline shape of
  RCA-style monitors).
- :class:`IncidentReport` — the structured, JSON-serializable outcome;
  deterministic byte-for-byte given a seed and a record stream.
- :func:`run_seeded_delay_scenario` / :func:`seeded_incident_report` —
  a seeded three-tier fault workload used by the CLI demo, the CI
  determinism gate, the regression tests and the benchmark.
"""

from repro.analysis.streaming.baselines import BaselineStat, RollingBaseline
from repro.analysis.streaming.detector import DetectionConfig, StreamingDetector
from repro.analysis.streaming.incident import (
    CauseScore,
    IncidentReport,
    incident_from_dict,
    incidents_from_json,
    incidents_to_json,
)
from repro.analysis.streaming.ranker import CausalRanker, WindowCompletion
from repro.analysis.streaming.reconstructor import StreamingReconstructor
from repro.analysis.streaming.scenario import (
    detect_run,
    run_seeded_delay_scenario,
    seeded_incident_report,
)

__all__ = [
    "BaselineStat",
    "CausalRanker",
    "CauseScore",
    "DetectionConfig",
    "IncidentReport",
    "RollingBaseline",
    "StreamingDetector",
    "StreamingReconstructor",
    "WindowCompletion",
    "detect_run",
    "incident_from_dict",
    "incidents_from_json",
    "incidents_to_json",
    "run_seeded_delay_scenario",
    "seeded_incident_report",
]
