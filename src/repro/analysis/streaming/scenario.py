"""Seeded fault scenario and canonical replay for streaming detection.

Two jobs live here:

- :func:`detect_run` — the canonical detection path: replay a collected
  run's records in arrival order through a :class:`StreamingDetector`.
  Arrival order in the store is deterministic for a deterministic
  workload, so the same run always yields byte-identical reports.
- :func:`run_seeded_delay_scenario` / :func:`seeded_incident_report` —
  a self-contained three-tier CORBA workload (driver → front → mid →
  back on one virtual-clock host) where a seeded
  :class:`~repro.faults.plan.FaultPlan` delays every ``mid->back``
  request inside a seed-chosen call window. The delay lands between the
  stub-start and skeleton-start probes of ``Back::work``, so the Back
  node's *self* time absorbs the spike while its ancestors merely
  inherit it — the shape the causal ranker must disentangle. This backs
  ``repro incidents --demo-faults SEED``, the CI determinism gate and
  the integration tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.analysis.streaming.detector import DetectionConfig, StreamingDetector
from repro.analysis.streaming.incident import IncidentReport, incidents_to_json
from repro.collector import LogCollector, MonitoringDatabase
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb, ThreadPerConnection
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock
from repro.telemetry.metrics import MetricsRegistry

IDL = """
module SD {
  interface Back { long work(in long x); };
  interface Mid { long relay(in long x); };
  interface Front { long handle(in long x); };
};
"""

#: Calls before the earliest possible fault window (baseline warm-up).
_WARMUP_CALLS = 16
#: Seed-chosen spread of the window start beyond the warm-up.
_START_SPREAD = 12


class WindowedDelayPlan(FaultPlan):
    """DELAY every message on one link inside a seed-chosen index window.

    Unlike the rate-based schedules, the window is contiguous: a
    sustained latency regression (what persistence filtering is for)
    rather than isolated spikes. The start index is derived from the
    seed via the plan's own hash draw, so different seeds move the
    incident around while one seed always reproduces it exactly.
    """

    def __init__(
        self,
        seed: int,
        scope: str,
        delay_ns: int = 1_000_000,
        window_width: int = 8,
    ):
        super().__init__(seed=seed, delay_ns=delay_ns)
        self.scope = scope
        self.window_width = window_width
        self.window_start = _WARMUP_CALLS + self.choice(
            "incident-window", 0, "start", _START_SPREAD
        )

    def message_fault(self, scope: str, index: int) -> FaultKind | None:
        if (
            scope == self.scope
            and self.window_start <= index < self.window_start + self.window_width
        ):
            return FaultKind.DELAY
        return None


@dataclass
class ScenarioResult:
    """One executed seeded-delay run, collected and ready to replay."""

    store: MonitoringDatabase
    run_id: str
    calls: int
    results: list[int]
    fault: dict
    faults_injected: dict


def _quiesce(processes, settle=3, interval=0.002, timeout=2.0):
    deadline = time.monotonic() + timeout
    last, stable = -1, 0
    while time.monotonic() < deadline:
        size = sum(len(p.log_buffer) for p in processes)
        if size == last:
            stable += 1
            if stable >= settle:
                return
        else:
            stable, last = 0, size
        time.sleep(interval)


def run_seeded_delay_scenario(
    seed: int,
    calls: int = 48,
    delay_ns: int = 1_000_000,
    store: MonitoringDatabase | None = None,
    live_detector: StreamingDetector | None = None,
) -> ScenarioResult:
    """Run the three-tier workload with a seeded mid->back delay window.

    ``live_detector``, when given, is polled after every call (and once
    after quiescence) — the ``--watch`` feed. Live polling interleaves
    per-process buffers best-effort; canonical reports come from
    replaying the collected store with :func:`detect_run`.
    """
    plan = WindowedDelayPlan(seed, scope="mid->back", delay_ns=delay_ns)
    injector = FaultInjector(plan)
    network = injector.network()
    clock = VirtualClock()
    host = Host("stream-host", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory("5d")
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)

    def make_process(name):
        process = SimProcess(name, host)
        MonitoringRuntime(
            process,
            MonitorConfig(mode=MonitorMode.LATENCY, uuid_factory=uuid_factory),
        )
        return process

    driver = make_process("driver")
    front = make_process("front")
    mid = make_process("mid")
    back = make_process("back")
    processes = [driver, front, mid, back]

    back_orb = Orb(
        back, network, policy=ThreadPerConnection(), registry=registry,
        request_timeout=2.0,
    )
    mid_orb = Orb(
        mid, network, policy=ThreadPerConnection(), registry=registry,
        request_timeout=2.0,
    )
    front_orb = Orb(
        front, network, policy=ThreadPerConnection(), registry=registry,
        request_timeout=2.0,
    )
    client_orb = Orb(driver, network, registry=registry, request_timeout=2.0)

    class BackImpl(compiled.Back):
        def work(self, x):
            clock.consume(2_000)
            return x * 2

    class MidImpl(compiled.Mid):
        def relay(self, x):
            clock.consume(1_000)
            return back_stub.work(x) + 1

    class FrontImpl(compiled.Front):
        def handle(self, x):
            clock.consume(500)
            return mid_stub.relay(x) + 1

    back_ref = back_orb.activate(BackImpl())
    back_stub = mid_orb.resolve(back_ref)
    mid_ref = mid_orb.activate(MidImpl())
    mid_stub = front_orb.resolve(mid_ref)
    front_ref = front_orb.activate(FrontImpl())
    front_stub = client_orb.resolve(front_ref)

    results = []
    try:
        for i in range(calls):
            results.append(front_stub.handle(i))
            if driver.monitor is not None:
                driver.monitor.unbind_ftl()
            if live_detector is not None:
                live_detector.poll(processes)
        _quiesce(processes)
        if live_detector is not None:
            live_detector.poll(processes)
        run_id = f"seeded-delay-{seed}"
        collector = LogCollector(store if store is not None else MonitoringDatabase())
        collector.collect(
            processes, run_id=run_id, description="seeded mid->back delay window"
        )
        return ScenarioResult(
            store=collector.database,
            run_id=run_id,
            calls=calls,
            results=results,
            fault={
                "scope": plan.scope,
                "kind": FaultKind.DELAY.value,
                "delay_ns": plan.delay_ns,
                "window_start": plan.window_start,
                "window_width": plan.window_width,
            },
            faults_injected=injector.summary(),
        )
    finally:
        for process in processes:
            process.shutdown()


def detect_run(
    store,
    run_id: str,
    config: DetectionConfig | None = None,
    registry: MetricsRegistry | None = None,
    on_incident: Callable[[IncidentReport], None] | None = None,
) -> StreamingDetector:
    """Replay a collected run through a fresh detector (canonical path).

    Returns the finalized detector; ``detector.incidents`` holds the
    reports and ``detector.dscg`` the reconstructed graph.
    """
    detector = StreamingDetector(
        config=config, registry=registry, on_incident=on_incident
    )
    detector.ingest_many(store.all_records(run_id))
    detector.dscg = detector.finalize()
    return detector


def seeded_incident_report(
    seed: int,
    calls: int = 48,
    config: DetectionConfig | None = None,
    registry: MetricsRegistry | None = None,
    watch: Callable[[IncidentReport], None] | None = None,
) -> tuple[str, list[IncidentReport]]:
    """Run the seeded scenario and return (canonical JSON, incidents).

    ``watch`` receives incidents live while the workload runs; the
    returned document always comes from the deterministic store replay.
    """
    if config is None:
        config = DetectionConfig()
    live = StreamingDetector(config=config, on_incident=watch) if watch else None
    scenario = run_seeded_delay_scenario(
        seed, calls=calls, store=MonitoringDatabase(), live_detector=live
    )
    detector = detect_run(
        scenario.store, scenario.run_id, config=config, registry=registry
    )
    stats = detector.stats()
    document = incidents_to_json(
        detector.incidents,
        run_id=scenario.run_id,
        extra={
            "scenario": {
                "seed": seed,
                "calls": scenario.calls,
                "fault": scenario.fault,
                "faults_injected": scenario.faults_injected,
            },
            "config": config.to_dict(),
            "stream": {
                "records": stats["records_ingested"],
                "chains": stats["chains"],
                "completions": stats["completions_scored"],
                "anomalous_completions": stats["anomalous_completions"],
            },
        },
    )
    return document, detector.incidents
