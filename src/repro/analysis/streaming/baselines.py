"""Rolling per-function baselines: windowed median/MAD and robust z.

Plain mean/stddev baselines are poisoned by the very spikes they are
supposed to detect; the detector instead keeps, per (interface,
operation), a sliding window of recent latency observations and scores
each new value with a robust z-score:

    z = 0.6745 * (x - median) / MAD

where MAD is the median absolute deviation over the window (0.6745
rescales MAD to the stddev of a normal distribution). Up to ~50% of the
window can be outliers before the baseline drifts, so detection keeps
working while an incident is in progress.

The window is kept as a sorted insertion list (O(window) updates); MAD
is recomputed per observation. Windows are small (64 by default), so
this is a handful of microseconds per completed call — measured in
``benchmarks/bench_streaming_detection.py``.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass

#: MAD -> stddev consistency constant for the normal distribution.
MAD_SCALE = 0.6745


@dataclass(frozen=True)
class BaselineStat:
    """One baseline snapshot (the values an incident report carries)."""

    count: int
    median: float
    mad: float

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "median_ns": round(self.median, 3),
            "mad_ns": round(self.mad, 3),
        }


class RollingBaseline:
    """Sliding-window median/MAD over the most recent observations."""

    __slots__ = ("window", "_ordered", "_arrivals")

    def __init__(self, window: int = 64):
        if window < 4:
            raise ValueError("baseline window must hold at least 4 observations")
        self.window = window
        self._ordered: list[float] = []
        self._arrivals: deque[float] = deque()

    @property
    def count(self) -> int:
        return len(self._arrivals)

    def _median_of(self, ordered: list[float]) -> float:
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def median(self) -> float:
        return self._median_of(self._ordered) if self._ordered else 0.0

    def mad(self) -> float:
        if not self._ordered:
            return 0.0
        median = self.median()
        deviations = sorted(abs(value - median) for value in self._ordered)
        return self._median_of(deviations)

    def snapshot(self) -> BaselineStat:
        return BaselineStat(count=self.count, median=self.median(), mad=self.mad())

    def score(self, value: float) -> float:
        """Robust z of ``value`` against the current window (not yet added).

        A degenerate window (MAD == 0, i.e. more than half the window is
        one constant) falls back to a floor of 1% of the median (1.0 ns
        minimum) so a genuine spike over a perfectly flat baseline still
        scores high instead of dividing by zero.
        """
        if not self._ordered:
            return 0.0
        median = self.median()
        mad = self.mad()
        scale = mad if mad > 0.0 else max(abs(median) * 0.01, 1.0)
        return MAD_SCALE * (value - median) / scale

    def observe(self, value: float) -> None:
        """Add one observation, evicting the oldest past the window."""
        value = float(value)
        if len(self._arrivals) >= self.window:
            oldest = self._arrivals.popleft()
            del self._ordered[bisect_left(self._ordered, oldest)]
        self._arrivals.append(value)
        insort(self._ordered, value)
