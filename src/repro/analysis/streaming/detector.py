"""Online spike detection over the streaming reconstructor.

Every completed invocation (the reconstructor's ``on_complete`` hook)
updates a rolling median/MAD baseline for its (interface, operation) and
is scored with a robust z. Detection is persistence-filtered: a single
slow call is noise, ``persistence`` *consecutive* anomalous completions
open an incident; ``cooldown`` consecutive normal completions close it
(or :meth:`StreamingDetector.finalize` closes whatever is still open).
At close, the :class:`~repro.analysis.streaming.ranker.CausalRanker`
scores every (component, function) that completed on the implicated
chains during the window and the result is emitted as an
:class:`~repro.analysis.streaming.incident.IncidentReport`.

Determinism: all state advances in record-application order, so a given
record stream (same seed, same arrival order) yields byte-identical
reports. Live polling may interleave *different chains'* records
differently between runs; replaying a collected run (the CLI and CI
path) is canonical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.dscg import CallNode, Dscg
from repro.analysis.latency import end_to_end_latency
from repro.analysis.streaming.baselines import RollingBaseline
from repro.analysis.streaming.incident import IncidentReport
from repro.analysis.streaming.ranker import (
    DEFAULT_WEIGHTS,
    CausalRanker,
    WindowCompletion,
)
from repro.analysis.streaming.reconstructor import StreamingReconstructor
from repro.core.records import ProbeRecord
from repro.platform.process import SimProcess
from repro.telemetry.metrics import NULL_COUNTER, NULL_GAUGE, MetricsRegistry


@dataclass(frozen=True)
class DetectionConfig:
    """Tuning knobs for spike detection and causal ranking."""

    #: Rolling baseline window per (interface, operation), in completions.
    window: int = 64
    #: Completions a function needs before it may alarm (baseline warm-up).
    min_samples: int = 8
    #: Robust z at which one completion counts as anomalous.
    z_threshold: float = 4.0
    #: Consecutive anomalous completions required to open an incident.
    persistence: int = 3
    #: Consecutive normal completions required to close an incident.
    cooldown: int = 8
    #: Record-index bucket width for the temporal-correlation curves.
    bucket_records: int = 64
    #: Causes kept per incident report.
    top_causes: int = 5
    #: Completions retained for window reconstruction at incident close.
    history: int = 4096
    #: Bound on the reconstructor's out-of-order buffer.
    max_pending: int = 100_000
    #: (anomaly, resource contribution, temporal correlation) blend.
    weights: tuple[float, float, float] = DEFAULT_WEIGHTS

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "min_samples": self.min_samples,
            "z_threshold": self.z_threshold,
            "persistence": self.persistence,
            "cooldown": self.cooldown,
            "bucket_records": self.bucket_records,
            "top_causes": self.top_causes,
            "weights": list(self.weights),
        }


@dataclass
class _OpenIncident:
    function: str
    opened_at_completion: int
    opened_at_record: int
    trigger_z: float
    trigger_latency_ns: int
    baseline_median_ns: float
    baseline_mad_ns: float
    peak_z: float
    observations: int = 0
    anomalous_observations: int = 0
    consecutive_normal: int = 0
    implicated_chains: set[str] = field(default_factory=set)
    last_completion: int = 0
    last_record: int = 0


class _FunctionState:
    __slots__ = ("baseline", "consecutive_anomalous", "run_completions", "incident")

    def __init__(self, window: int):
        self.baseline = RollingBaseline(window)
        self.consecutive_anomalous = 0
        #: The current uninterrupted anomalous run (pre-incident).
        self.run_completions: list[WindowCompletion] = []
        self.incident: _OpenIncident | None = None


class StreamingDetector:
    """Live incident detection and causal ranking over a record stream.

    Not thread-safe by itself beyond what the underlying reconstructor
    serializes: completions are processed inline under the
    reconstructor's ingest lock, so one detector must be fed from its
    own ``ingest``/``poll`` calls only.
    """

    def __init__(
        self,
        config: DetectionConfig | None = None,
        registry: MetricsRegistry | None = None,
        on_incident: Callable[[IncidentReport], None] | None = None,
    ):
        self.config = config if config is not None else DetectionConfig()
        self.on_incident = on_incident
        self.incidents: list[IncidentReport] = []
        self.reconstructor = StreamingReconstructor(
            on_complete=self._on_complete, max_pending=self.config.max_pending
        )
        self.ranker = CausalRanker(
            weights=self.config.weights,
            bucket_records=self.config.bucket_records,
            z_norm=self.config.z_threshold,
        )
        self._functions: dict[str, _FunctionState] = {}
        self._history: deque[WindowCompletion] = deque(maxlen=self.config.history)
        self._completion_index = 0
        self._anomalous_total = 0
        if registry is not None:
            self._m_records = registry.counter(
                "repro_streaming_records_total",
                "Probe records consumed by the streaming detector.",
            )
            self._m_completions = registry.counter(
                "repro_streaming_completions_total",
                "Invocations completed under streaming reconstruction.",
            )
            self._m_anomalous = registry.counter(
                "repro_streaming_anomalous_completions_total",
                "Completions scored beyond the robust-z threshold.",
            )
            self._m_incidents = registry.counter(
                "repro_streaming_incidents_total",
                "Incidents opened by persistence-filtered spike detection.",
            )
            self._m_open = registry.gauge(
                "repro_streaming_open_incidents",
                "Incidents currently open (spike still persisting).",
            )
            self._m_live_chains = registry.gauge(
                "repro_streaming_live_chains",
                "Chains with open frames in the streaming reconstructor.",
            )
            self._m_pending = registry.gauge(
                "repro_streaming_pending_records",
                "Out-of-order records buffered awaiting their gap record.",
            )
        else:
            self._m_records = NULL_COUNTER
            self._m_completions = NULL_COUNTER
            self._m_anomalous = NULL_COUNTER
            self._m_incidents = NULL_COUNTER
            self._m_open = NULL_GAUGE
            self._m_live_chains = NULL_GAUGE
            self._m_pending = NULL_GAUGE

    # ------------------------------------------------------------------
    # Feeding

    def ingest(self, record: ProbeRecord) -> None:
        self.reconstructor.ingest(record)
        self._m_records.inc()

    def ingest_many(self, records: Iterable[ProbeRecord]) -> int:
        count = self.reconstructor.ingest_many(records)
        if count:
            self._m_records.inc(count)
        return count

    def poll(self, processes: Iterable[SimProcess]) -> int:
        new = self.reconstructor.poll(processes)
        if new:
            self._m_records.inc(new)
        self._m_live_chains.set(self.reconstructor.live_chain_count())
        self._m_pending.set(self.reconstructor.pending_records())
        return new

    def finalize(self) -> Dscg:
        """Flush the stream, close open incidents, return the final DSCG.

        The returned DSCG satisfies the batch-equivalence contract of
        :class:`~repro.analysis.streaming.reconstructor.StreamingReconstructor`.
        """
        dscg = self.reconstructor.finalize()
        for function in sorted(self._functions):
            state = self._functions[function]
            if state.incident is not None:
                self._close_incident(state, closed_by="finalize")
        self._m_open.set(0)
        return dscg

    # ------------------------------------------------------------------
    # Completion processing (runs under the reconstructor's ingest lock)

    def _on_complete(self, node: CallNode, record: ProbeRecord, record_index: int) -> None:
        self._m_completions.inc()
        latency = end_to_end_latency(node)
        node.latency_ns = latency
        if latency is None:
            return  # causality-only mode: no wall readings to score
        children_ns = 0
        for child in node.children:
            child_latency = getattr(child, "latency_ns", None)
            if child_latency is None:
                child_latency = end_to_end_latency(child)
            if child_latency is not None and child_latency > 0:
                children_ns += child_latency
        self._completion_index += 1
        state = self._functions.get(node.function)
        if state is None:
            state = self._functions[node.function] = _FunctionState(self.config.window)
        z = (
            state.baseline.score(latency)
            if state.baseline.count >= self.config.min_samples
            else 0.0
        )
        anomalous = z >= self.config.z_threshold
        completion = WindowCompletion(
            completion_index=self._completion_index,
            record_index=record_index,
            function=node.function,
            component=node.component,
            chain_uuid=node.chain_uuid,
            latency_ns=latency,
            self_ns=max(latency - children_ns, 0),
            z=z if anomalous else 0.0,
        )
        self._history.append(completion)
        state.baseline.observe(latency)
        if anomalous:
            self._anomalous_total += 1
            self._m_anomalous.inc()
        self._advance_state(state, completion, anomalous)

    def _advance_state(
        self, state: _FunctionState, completion: WindowCompletion, anomalous: bool
    ) -> None:
        incident = state.incident
        if incident is None:
            if not anomalous:
                state.consecutive_anomalous = 0
                state.run_completions.clear()
                return
            state.consecutive_anomalous += 1
            state.run_completions.append(completion)
            if state.consecutive_anomalous >= self.config.persistence:
                self._open_incident(state)
            return

        incident.observations += 1
        incident.last_completion = completion.completion_index
        incident.last_record = completion.record_index
        if anomalous:
            incident.anomalous_observations += 1
            incident.consecutive_normal = 0
            incident.implicated_chains.add(completion.chain_uuid)
            incident.peak_z = max(incident.peak_z, completion.z)
        else:
            incident.consecutive_normal += 1
            if incident.consecutive_normal >= self.config.cooldown:
                self._close_incident(state, closed_by="cooldown")

    def _open_incident(self, state: _FunctionState) -> None:
        first = state.run_completions[0]
        baseline = state.baseline.snapshot()
        incident = _OpenIncident(
            function=first.function,
            opened_at_completion=first.completion_index,
            opened_at_record=first.record_index,
            trigger_z=first.z,
            trigger_latency_ns=first.latency_ns,
            baseline_median_ns=baseline.median,
            baseline_mad_ns=baseline.mad,
            peak_z=max(c.z for c in state.run_completions),
            observations=len(state.run_completions),
            anomalous_observations=len(state.run_completions),
            implicated_chains={c.chain_uuid for c in state.run_completions},
            last_completion=state.run_completions[-1].completion_index,
            last_record=state.run_completions[-1].record_index,
        )
        state.incident = incident
        state.consecutive_anomalous = 0
        state.run_completions = []
        self._m_incidents.inc()
        self._m_open.inc()

    def _close_incident(self, state: _FunctionState, closed_by: str) -> None:
        incident = state.incident
        assert incident is not None
        state.incident = None
        self._m_open.dec()
        window = [
            completion
            for completion in self._history
            if incident.opened_at_completion
            <= completion.completion_index
            <= incident.last_completion
        ]
        causes = self.ranker.rank(
            window,
            trigger_function=incident.function,
            implicated_chains=incident.implicated_chains,
            top=self.config.top_causes,
        )
        report = IncidentReport(
            function=incident.function,
            opened_at_completion=incident.opened_at_completion,
            opened_at_record=incident.opened_at_record,
            closed_at_completion=incident.last_completion,
            closed_at_record=incident.last_record,
            trigger_z=incident.trigger_z,
            trigger_latency_ns=incident.trigger_latency_ns,
            baseline_median_ns=incident.baseline_median_ns,
            baseline_mad_ns=incident.baseline_mad_ns,
            peak_z=incident.peak_z,
            observations=incident.observations,
            anomalous_observations=incident.anomalous_observations,
            closed_by=closed_by,
            implicated_chains=sorted(incident.implicated_chains),
            causes=causes,
        )
        self.incidents.append(report)
        if self.on_incident is not None:
            self.on_incident(report)

    # ------------------------------------------------------------------
    # Views

    def open_incident_count(self) -> int:
        return sum(1 for s in self._functions.values() if s.incident is not None)

    def stats(self) -> dict[str, int]:
        stats = self.reconstructor.stats()
        stats.update(
            {
                "completions_scored": self._completion_index,
                "anomalous_completions": self._anomalous_total,
                "incidents": len(self.incidents),
                "open_incidents": self.open_incident_count(),
            }
        )
        return stats
