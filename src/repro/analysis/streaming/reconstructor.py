"""Incremental DSCG reconstruction over a live record stream.

The batch analyzer sorts each chain's records by event number and runs
them through the Figure-4 machine at quiescence. The streaming
reconstructor does the same work record-by-record as probes emit them:
each chain owns a :class:`~repro.analysis.statemachine.ChainBuilder`
(the *same* transition implementation the batch path uses) plus a
re-serialization buffer that holds out-of-order arrivals until their
event number comes up.

Equivalence contract: after :meth:`StreamingReconstructor.finalize`, the
resulting :class:`~repro.analysis.dscg.Dscg` is bit-identical to
``reconstruct(store, run)`` over the same records whenever event numbers
are unique per chain (any fault-free run, and every fault domain that
loses or delays records rather than duplicating event numbers). Records
that *collide* on an event number — the mingled-chain hazard — are
applied immediately and take the same abnormal transition the batch
analyzer records, though the relative order of abnormal entries may
differ.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from repro.analysis.dscg import CallNode, Dscg
from repro.analysis.statemachine import ChainBuilder
from repro.core.records import ProbeRecord
from repro.platform.process import SimProcess

#: Completion hook: (closed node, closing record, global record index).
CompletionHook = Callable[[CallNode, ProbeRecord, int], None]


class _ChainStream:
    """Live reconstruction state for one causal chain."""

    __slots__ = ("builder", "expected_seq", "pending")

    def __init__(self, chain_uuid: str):
        self.builder = ChainBuilder(chain_uuid)
        self.expected_seq = 0
        self.pending: dict[int, ProbeRecord] = {}


class StreamingReconstructor:
    """Maintains live DSCG chains from an incremental record stream.

    Thread-safe. Feed records with :meth:`ingest`/:meth:`ingest_many`,
    or attach to live processes and call :meth:`poll` (non-draining
    cursor reads, so the quiescence-time collector still sees every
    record). ``on_complete`` fires inline whenever a call frame closes —
    the hook the spike detector hangs off.

    ``max_pending`` bounds the re-serialization buffer across all
    chains: a stalled chain (its gap record lost in flight) cannot grow
    memory without limit. Overflow drops the incoming out-of-order
    record and counts it in :attr:`pending_dropped`.
    """

    def __init__(
        self,
        on_complete: CompletionHook | None = None,
        max_pending: int | None = 100_000,
    ):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        self.on_complete = on_complete
        self.max_pending = max_pending
        self.records_ingested = 0
        self.pending_dropped = 0
        self._chains: dict[str, _ChainStream] = {}
        self._pending_total = 0
        self._completed_nodes = 0
        self._finalized: Dscg | None = None
        self._lock = threading.Lock()
        self._cursors: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Ingest

    def ingest(self, record: ProbeRecord) -> None:
        with self._lock:
            self._enqueue_locked(record)

    def ingest_many(self, records: Iterable[ProbeRecord]) -> int:
        count = 0
        with self._lock:
            for record in records:
                self._enqueue_locked(record)
                count += 1
        return count

    def poll(self, processes: Iterable[SimProcess]) -> int:
        """Pull new records from process buffers without draining them."""
        new = 0
        with self._lock:
            for process in processes:
                buffer = process.log_buffer
                read_from = getattr(buffer, "read_from", None)
                if read_from is not None:
                    records, cursor = read_from(self._cursors.get(process.pid))
                    self._cursors[process.pid] = cursor
                else:
                    snapshot = buffer.snapshot()
                    offset = self._cursors.get(process.pid, 0)
                    records = snapshot[offset:]
                    self._cursors[process.pid] = len(snapshot)
                for record in records:
                    self._enqueue_locked(record)
                    new += 1
        return new

    def _enqueue_locked(self, record: ProbeRecord) -> None:
        if self._finalized is not None:
            raise RuntimeError("cannot ingest into a finalized reconstructor")
        self.records_ingested += 1
        stream = self._chains.get(record.chain_uuid)
        if stream is None:
            stream = self._chains[record.chain_uuid] = _ChainStream(record.chain_uuid)
        seq = record.event_seq
        if seq == stream.expected_seq:
            self._apply_locked(stream, record)
            stream.expected_seq += 1
            pending = stream.pending
            while pending:
                next_record = pending.pop(stream.expected_seq, None)
                if next_record is None:
                    break
                self._pending_total -= 1
                self._apply_locked(stream, next_record)
                stream.expected_seq += 1
        elif seq > stream.expected_seq and seq not in stream.pending:
            if (
                self.max_pending is not None
                and self._pending_total >= self.max_pending
            ):
                self.pending_dropped += 1
                return
            stream.pending[seq] = record
            self._pending_total += 1
        else:
            # Event-number collision (a duplicate, or mingled chains):
            # apply immediately — the machine takes the same abnormal
            # transition the batch analyzer's sorted pass would.
            self._apply_locked(stream, record)

    def _apply_locked(self, stream: _ChainStream, record: ProbeRecord) -> None:
        completed = stream.builder.apply(record)
        if completed is not None:
            self._completed_nodes += 1
            if self.on_complete is not None:
                self.on_complete(completed, record, self.records_ingested)

    # ------------------------------------------------------------------
    # Live views

    def live_chain_count(self) -> int:
        """Chains with at least one frame still open."""
        with self._lock:
            return sum(1 for s in self._chains.values() if s.builder.stack)

    def open_frames(self) -> list[CallNode]:
        """Every invocation currently in flight, outermost first per chain."""
        with self._lock:
            frames: list[CallNode] = []
            for chain_uuid in sorted(self._chains):
                frames.extend(self._chains[chain_uuid].builder.stack)
            return frames

    def completed_nodes(self) -> int:
        with self._lock:
            return self._completed_nodes

    def pending_records(self) -> int:
        """Out-of-order records currently buffered awaiting their gap."""
        with self._lock:
            return self._pending_total

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "records_ingested": self.records_ingested,
                "chains": len(self._chains),
                "completed_nodes": self._completed_nodes,
                "pending_records": self._pending_total,
                "pending_dropped": self.pending_dropped,
            }

    # ------------------------------------------------------------------
    # Finalization

    def finalize(self) -> Dscg:
        """Close the stream and return the reconstructed DSCG.

        Any records still waiting on a lost gap record are flushed
        through the machine in ascending event-number order — exactly
        the order the batch analyzer would have applied them — then
        every chain salvages its open frames, chains are grouped
        ascending by chain uuid (the ``chains_for_run`` ordering
        contract) and oneway forks are linked. Idempotent.
        """
        with self._lock:
            if self._finalized is not None:
                return self._finalized
            dscg = Dscg()
            for chain_uuid in sorted(self._chains):
                stream = self._chains[chain_uuid]
                if stream.pending:
                    for seq in sorted(stream.pending):
                        self._apply_locked(stream, stream.pending[seq])
                    self._pending_total -= len(stream.pending)
                    stream.pending.clear()
                dscg.add_chain(stream.builder.finish())
            dscg.link_chains()
            self._finalized = dscg
            return dscg
