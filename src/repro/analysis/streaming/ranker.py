"""Causal root-cause ranking over an incident window.

When a spike persists on some function F, *every* ancestor of the real
culprit spikes too — F's latency contains its callees' latencies, so a
flat "what got slow" list names the whole call path. The ranker
disentangles that using the live DSCG: each completion's **self time**
(its measured window minus its children's windows) isolates where the
extra nanoseconds were actually spent, and three per-candidate signals
are blended into one score:

- **anomaly** — how abnormal the candidate's own latency was against
  its rolling baseline (mean positive robust z, squashed to [0, 1));
- **resource contribution** — the candidate's share of all self time
  spent on the implicated chains during the window (the "energy
  attribution" term of RCA-style monitors);
- **temporal correlation** — cosine similarity between the candidate's
  per-bucket self-time curve and the trigger function's latency curve
  across the window (did it surge *when* the symptom surged?).

``score = 0.4 * anomaly + 0.4 * resource + 0.2 * correlation`` by
default, candidates sorted by descending score with a stable
(component, function) tie-break — deterministic given the stream.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.streaming.incident import CauseScore

#: (anomaly, resource contribution, temporal correlation) blend.
DEFAULT_WEIGHTS: tuple[float, float, float] = (0.4, 0.4, 0.2)


@dataclass(frozen=True, slots=True)
class WindowCompletion:
    """One completed invocation as the detector observed it."""

    completion_index: int
    record_index: int
    function: str
    component: str
    chain_uuid: str
    latency_ns: int
    self_ns: int
    z: float


class CausalRanker:
    """Scores (component, function) candidates for one incident window."""

    def __init__(
        self,
        weights: tuple[float, float, float] = DEFAULT_WEIGHTS,
        bucket_records: int = 64,
        z_norm: float = 4.0,
    ):
        if len(weights) != 3 or any(w < 0 for w in weights):
            raise ValueError("weights must be three non-negative numbers")
        self.weights = weights
        self.bucket_records = max(1, bucket_records)
        self.z_norm = z_norm

    # ------------------------------------------------------------------

    def rank(
        self,
        completions: list[WindowCompletion],
        trigger_function: str,
        implicated_chains: set[str],
        top: int = 5,
    ) -> list[CauseScore]:
        """Rank candidates observed on the implicated chains.

        ``completions`` is everything that completed during the incident
        window (any function, any chain); only completions on implicated
        chains become candidates, but the trigger function's own curve is
        built from all its window completions so the correlation target
        is well-populated.
        """
        trigger_curve = self._bucket_curve(
            [c for c in completions if c.function == trigger_function],
            lambda c: float(max(c.latency_ns, 0)),
        )

        candidates: dict[tuple[str, str], list[WindowCompletion]] = defaultdict(list)
        for completion in completions:
            if completion.chain_uuid in implicated_chains:
                candidates[(completion.component, completion.function)].append(
                    completion
                )
        if not candidates:
            return []

        total_self_ns = sum(
            max(c.self_ns, 0) for group in candidates.values() for c in group
        )

        scored: list[CauseScore] = []
        for (component, function), group in candidates.items():
            self_ns = sum(max(c.self_ns, 0) for c in group)
            resource = self_ns / total_self_ns if total_self_ns > 0 else 0.0
            mean_z = sum(max(c.z, 0.0) for c in group) / len(group)
            anomaly = mean_z / (mean_z + self.z_norm) if mean_z > 0.0 else 0.0
            curve = self._bucket_curve(group, lambda c: float(max(c.self_ns, 0)))
            correlation = self._cosine(curve, trigger_curve)
            w_anomaly, w_resource, w_temporal = self.weights
            scored.append(
                CauseScore(
                    component=component,
                    function=function,
                    score=w_anomaly * anomaly
                    + w_resource * resource
                    + w_temporal * correlation,
                    anomaly=anomaly,
                    resource_share=resource,
                    temporal_correlation=correlation,
                    observations=len(group),
                    anomalous_observations=sum(1 for c in group if c.z > 0.0),
                    self_ns_total=self_ns,
                )
            )

        scored.sort(key=lambda c: (-c.score, c.component, c.function))
        return scored[:top]

    # ------------------------------------------------------------------

    def _bucket_curve(self, group, value_of) -> dict[int, float]:
        """Record-index-bucketed activity curve for one candidate."""
        curve: dict[int, float] = defaultdict(float)
        for completion in group:
            curve[completion.record_index // self.bucket_records] += value_of(
                completion
            )
        return dict(curve)

    @staticmethod
    def _cosine(a: dict[int, float], b: dict[int, float]) -> float:
        if not a or not b:
            return 0.0
        dot = sum(value * b.get(bucket, 0.0) for bucket, value in sorted(a.items()))
        norm_a = math.sqrt(sum(value * value for value in a.values()))
        norm_b = math.sqrt(sum(value * value for value in b.values()))
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return dot / (norm_a * norm_b)
