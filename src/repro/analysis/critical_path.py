"""Critical-path characterization over the DSCG (future work, Section 6).

"Other promising avenues ... to provide richer end-to-end system behavior
characterization support." A natural extension once the full call chain
is available: for each chain, the *latency critical path* — the root-to-
leaf path that dominates end-to-end latency — and each node's share of
its parent's time (self vs children vs unattributed gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dscg import CallNode, ChainTree, Dscg
from repro.analysis.latency import end_to_end_latency


@dataclass
class PathStep:
    function: str
    object_id: str
    latency_ns: int
    self_share_ns: int  # latency not explained by child calls


@dataclass
class CriticalPath:
    chain_uuid: str
    total_latency_ns: int
    steps: list[PathStep] = field(default_factory=list)

    @property
    def display(self) -> str:
        return " -> ".join(step.function for step in self.steps)

    def dominant_step(self) -> PathStep | None:
        """The step with the largest unexplained (self) share."""
        if not self.steps:
            return None
        return max(self.steps, key=lambda step: step.self_share_ns)


def _children_latency(node: CallNode) -> int:
    total = 0
    for child in node.children:
        latency = end_to_end_latency(child)
        if latency is not None and latency > 0:
            total += latency
    return total


def critical_path(tree: ChainTree) -> CriticalPath | None:
    """Follow the slowest child from the chain's slowest root downwards."""
    candidates = [
        (end_to_end_latency(root) or 0, root) for root in tree.roots
    ]
    if not candidates:
        return None
    total, node = max(candidates, key=lambda pair: pair[0])
    path = CriticalPath(chain_uuid=tree.chain_uuid, total_latency_ns=total)
    while node is not None:
        latency = end_to_end_latency(node) or 0
        self_share = max(latency - _children_latency(node), 0)
        path.steps.append(
            PathStep(
                function=node.function,
                object_id=node.object_id,
                latency_ns=latency,
                self_share_ns=self_share,
            )
        )
        slowest_child = None
        slowest_latency = -1
        for child in node.children:
            child_latency = end_to_end_latency(child)
            if child_latency is not None and child_latency > slowest_latency:
                slowest_latency = child_latency
                slowest_child = child
        node = slowest_child
    return path


def critical_paths(dscg: Dscg, top: int = 5) -> list[CriticalPath]:
    """The ``top`` slowest chains' critical paths, slowest first."""
    paths = []
    for tree in dscg.chains.values():
        path = critical_path(tree)
        if path is not None and path.total_latency_ns > 0:
            paths.append(path)
    paths.sort(key=lambda p: p.total_latency_ns, reverse=True)
    return paths[:top]


def render_critical_path(path: CriticalPath) -> str:
    """Human-readable breakdown with per-step latency shares."""
    lines = [
        f"chain {path.chain_uuid[:8]}: total {path.total_latency_ns / 1e6:.3f} ms"
    ]
    for depth, step in enumerate(path.steps):
        share = (
            step.latency_ns / path.total_latency_ns * 100
            if path.total_latency_ns
            else 0.0
        )
        lines.append(
            f"  {'  ' * depth}{step.function}"
            f"  {step.latency_ns / 1e6:.3f} ms ({share:.0f}% of chain,"
            f" self {step.self_share_ns / 1e6:.3f} ms)"
        )
    return "\n".join(lines)
