"""Streaming quantile estimation (the P² algorithm).

The online monitor and the streaming detector both need tail latency
(p95/p99) without retaining every sample: a run at production scale
completes millions of calls, and per-function sample lists would grow
without bound. The P² algorithm (Jain & Chlamtac, CACM 1985) tracks one
quantile with five markers — O(1) memory, O(1) update — by moving the
middle markers along a piecewise-parabolic interpolation of the
empirical CDF.

The estimator is fully deterministic: given the same observation
sequence it produces bit-identical marker state, which the streaming
incident reports rely on for their byte-for-byte determinism gate.
"""

from __future__ import annotations


class P2Quantile:
    """One streaming quantile estimate over a sequence of observations.

    The first five observations are held exactly (the estimate is the
    nearest-rank percentile of what has been seen); from the sixth
    onward the classic five-marker update runs.
    """

    __slots__ = ("p", "_count", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            heights.append(float(value))
            heights.sort()
            return

        # Locate the cell containing the observation; clamp the extremes.
        if value < heights[0]:
            heights[0] = float(value)
            cell = 0
        elif value >= heights[4]:
            heights[4] = float(value)
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1

        positions = self._positions
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]

        # Adjust the three middle markers toward their desired positions.
        for index in range(1, 4):
            delta = self._desired[index] - positions[index]
            if (delta >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                delta <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        below = positions[index] - positions[index - 1]
        above = positions[index + 1] - positions[index]
        span = positions[index + 1] - positions[index - 1]
        return heights[index] + (step / span) * (
            (below + step) * (heights[index + 1] - heights[index]) / above
            + (above - step) * (heights[index] - heights[index - 1]) / below
        )

    def _linear(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        neighbor = index + int(step)
        return heights[index] + step * (heights[neighbor] - heights[index]) / (
            positions[neighbor] - positions[index]
        )

    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        if self._count == 0:
            return 0.0
        if self._count <= 5:
            # Nearest-rank on the exactly-held prefix.
            rank = max(0, min(self._count - 1, int(self.p * self._count)))
            return self._heights[rank]
        return self._heights[2]
