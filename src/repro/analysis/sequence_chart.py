"""OVATION-style sequence chart (related-work baseline view).

OVATION [15] presents "object method calls ... in a sequence chart with
respect to time progressing, along with their corresponding runtime
execution entities (thread, process, and host)" — but without global
causality capture it cannot relate one invocation to the rest. This
module renders that view from our records, both as a data structure and
as monospace text, so the correlation benchmark can contrast what each
approach can and cannot recover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import TracingEvent
from repro.core.records import ProbeRecord


@dataclass
class InvocationSpan:
    """One timed invocation on one execution entity (no causal links)."""

    function: str
    object_id: str
    process: str
    host: str
    thread_id: int
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def entity(self) -> str:
        return f"{self.host}/{self.process}/t{self.thread_id}"


def spans_from_records(records: list[ProbeRecord]) -> list[InvocationSpan]:
    """Pair skeleton start/end records into spans, ignoring causality.

    This deliberately uses only per-record locality and timing — exactly
    the information an interceptor-only monitor has.
    """
    open_spans: dict[tuple, ProbeRecord] = {}
    spans: list[InvocationSpan] = []
    for record in sorted(
        records, key=lambda r: (r.wall_start if r.wall_start is not None else 0)
    ):
        key = (record.process, record.thread_id, record.interface, record.operation,
               record.object_id)
        if record.event is TracingEvent.SKEL_START:
            open_spans[key] = record
        elif record.event is TracingEvent.SKEL_END:
            start = open_spans.pop(key, None)
            if start is None or start.wall_end is None or record.wall_start is None:
                continue
            spans.append(
                InvocationSpan(
                    function=record.function,
                    object_id=record.object_id,
                    process=record.process,
                    host=record.host,
                    thread_id=record.thread_id,
                    start_ns=start.wall_end,
                    end_ns=record.wall_start,
                )
            )
    spans.sort(key=lambda s: s.start_ns)
    return spans


def render_sequence_chart(spans: list[InvocationSpan], width: int = 72) -> str:
    """Monospace sequence chart: one row per span, bars scaled to time."""
    if not spans:
        return "(no spans)"
    t0 = min(span.start_ns for span in spans)
    t1 = max(span.end_ns for span in spans)
    window = max(t1 - t0, 1)
    label_width = max(len(f"{s.entity} {s.function}") for s in spans)
    lines = []
    for span in spans:
        left = int((span.start_ns - t0) * (width - 1) / window)
        right = max(left + 1, int((span.end_ns - t0) * (width - 1) / window))
        bar = " " * left + "#" * (right - left)
        label = f"{span.entity} {span.function}".ljust(label_width)
        lines.append(f"{label} |{bar.ljust(width)}|")
    return "\n".join(lines)
