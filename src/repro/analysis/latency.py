"""End-to-end timing latency (Section 3.2).

The latency of one invocation F is computed from the probe wall readings:

- ``L(F) = P(F,4,start) − P(F,1,end) − O_F`` for synchronous calls and the
  stub side of oneway calls (probe 4 start minus probe 1 end — both taken
  on the client host, so no clock synchronization is needed);
- ``L(F) = P(F,3,start) − P(F,2,end) − O_F`` for collocated calls and the
  skeleton side of oneway calls (both readings on the server host).

``O_F`` compensates the causality-capture overhead spent inside F's
measured window: the summed probe self-intervals of F's immediate child
invocations, where the probe set R is {1,2,3,4} for synchronous children
and {1,4} for oneway children (which have no skeleton probes in this
chain). All O_F terms are *durations*, so mixing hosts is safe.
"""

from __future__ import annotations

import statistics
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.events import CallKind, TracingEvent
from repro.analysis.dscg import CallNode, Dscg

_SYNC_PROBES = (
    TracingEvent.STUB_START,
    TracingEvent.SKEL_START,
    TracingEvent.SKEL_END,
    TracingEvent.STUB_END,
)
_ONEWAY_STUB_PROBES = (TracingEvent.STUB_START, TracingEvent.STUB_END)


def probe_set(node: CallNode) -> tuple[TracingEvent, ...]:
    """R(F): which probes' overhead a child contributes (paper Sec. 3.2)."""
    if node.call_kind is CallKind.ONEWAY and node.oneway_side == "stub":
        return _ONEWAY_STUB_PROBES
    return _SYNC_PROBES


def causality_overhead(node: CallNode) -> int:
    """O_F — total probe self-time of F's immediate children.

    A child contributes only when its full probe set R survived capture:
    under lossy capture, compensating with a partial R would subtract an
    arbitrary fraction of the child's true probe cost and bias L(F).
    """
    total = 0
    for child in node.children:
        records = [child.records.get(event) for event in probe_set(child)]
        if any(record is None for record in records):
            continue
        total += sum(record.probe_wall_cost() for record in records)
    return total


def end_to_end_latency(node: CallNode) -> int | None:
    """L(F) in nanoseconds, or None when the needed readings are missing."""
    overhead = causality_overhead(node)
    records = node.records
    use_skel_window = node.collocated or (
        node.call_kind is CallKind.ONEWAY and node.oneway_side == "skel"
    )
    if use_skel_window:
        start = records.get(TracingEvent.SKEL_START)
        end = records.get(TracingEvent.SKEL_END)
        if start is None or end is None:
            return None
        if start.wall_end is None or end.wall_start is None:
            return None
        return end.wall_start - start.wall_end - overhead
    start = records.get(TracingEvent.STUB_START)
    end = records.get(TracingEvent.STUB_END)
    if start is None or end is None:
        return None
    if start.wall_end is None or end.wall_start is None:
        return None
    return end.wall_start - start.wall_end - overhead


def annotate_chain_latency(tree) -> None:
    """Attach ``latency_ns`` to every node of one chain tree.

    L(F) reads only the node's own probe records and its immediate
    children's — all within one chain — so chains annotate independently
    and the sharded analyzer runs this inside its workers.
    """
    for node in tree.walk():
        node.latency_ns = end_to_end_latency(node)


def annotate_latency(dscg: Dscg) -> None:
    """Attach ``latency_ns`` to every node (None when not measurable).

    "Latency can be annotated to the DSCG's nodes to help perceive latency
    dispersed throughout the system-wide call hierarchy."
    """
    for tree in dscg.chains.values():
        annotate_chain_latency(tree)


@dataclass
class FunctionLatency:
    """Latency statistics for one function (interface::operation)."""

    function: str
    samples: list[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total_ns(self) -> int:
        return sum(self.samples)

    @property
    def mean_ns(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def min_ns(self) -> int:
        return min(self.samples) if self.samples else 0

    @property
    def max_ns(self) -> int:
        return max(self.samples) if self.samples else 0


def latency_report(dscg: Dscg) -> dict[str, FunctionLatency]:
    """Per-function latency statistics over the whole DSCG."""
    report: dict[str, FunctionLatency] = defaultdict(
        lambda: FunctionLatency(function="")
    )
    for node in dscg.walk():
        latency = end_to_end_latency(node)
        if latency is None:
            continue
        entry = report[node.function]
        entry.function = node.function
        entry.samples.append(latency)
    return dict(report)
