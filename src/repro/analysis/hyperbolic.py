"""Hyperbolic (Poincaré-disk) layout for the DSCG — Figure 5's viewer.

"A large-scale application's DSCG potentially consists of millions of
nodes. Conventional visualization tools based on planar graph display are
incapable of presenting, navigating and inspecting such enormous amount
of graph nodes. The hyperbolic space viewer demonstrates its promising
capability" (Section 3.1). The paper used Inxight's closed-source viewer;
this module computes the layout itself: each node receives a position in
the unit disk using the classic hyperbolic tree algorithm (wedge
subdivision with hyperbolic translation), and exporters emit JSON (for
any client) and a self-contained SVG snapshot.
"""

from __future__ import annotations

import cmath
import json
import math
from dataclasses import dataclass, field

from repro.analysis.dscg import CallNode, Dscg


@dataclass
class LayoutNode:
    """One positioned node."""

    label: str
    x: float
    y: float
    depth: int
    children: list["LayoutNode"] = field(default_factory=list)
    #: Extra annotation rendered by viewers (latency, CPU, ...).
    annotation: str = ""

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def _mobius_translate(z: complex, a: complex) -> complex:
    """Translate ``z`` by the hyperbolic isometry sending 0 to ``a``."""
    return (z + a) / (1 + a.conjugate() * z)


def _leaf_weight(node: CallNode) -> int:
    if not node.children:
        return 1
    return sum(_leaf_weight(child) for child in node.children)


class HyperbolicLayout:
    """Computes Poincaré-disk coordinates for a DSCG (or any tree)."""

    def __init__(self, step: float = 0.45):
        """``step`` is the hyperbolic distance (as a disk radius fraction)
        between a parent and its children; the Figure-5 look uses ~0.45."""
        if not 0.0 < step < 1.0:
            raise ValueError("step must be in (0, 1)")
        self.step = step

    def layout_dscg(self, dscg: Dscg, annotate=None) -> LayoutNode:
        """Lay out the whole grouped DSCG under a virtual root."""
        root = LayoutNode(label="<system>", x=0.0, y=0.0, depth=0)
        trees = dscg.root_chains() or list(dscg.chains.values())
        call_roots: list[CallNode] = []
        for tree in trees:
            call_roots.extend(tree.roots)
        weights = [_leaf_weight(node) for node in call_roots]
        total = sum(weights) or 1
        angle = 0.0
        for node, weight in zip(call_roots, weights):
            span = 2.0 * math.pi * weight / total
            child = self._place(node, complex(0, 0), angle + span / 2.0, span, 1, annotate)
            root.children.append(child)
            angle += span
        return root

    def _place(
        self,
        node: CallNode,
        origin: complex,
        heading: float,
        wedge: float,
        depth: int,
        annotate,
    ) -> LayoutNode:
        # Position the node at hyperbolic distance `step` from its parent
        # along the wedge bisector, then map into the disk.
        local = self.step * cmath.exp(1j * heading)
        position = _mobius_translate(local, origin)
        layout = LayoutNode(
            label=node.function,
            x=position.real,
            y=position.imag,
            depth=depth,
            annotation=annotate(node) if annotate else "",
        )
        children = node.children
        if children:
            weights = [_leaf_weight(child) for child in children]
            total = sum(weights)
            start = heading - wedge / 2.0
            for child, weight in zip(children, weights):
                span = wedge * weight / total
                layout.children.append(
                    self._place(
                        child, position, start + span / 2.0, span, depth + 1, annotate
                    )
                )
                start += span
        return layout


def layout_to_json(root: LayoutNode) -> str:
    """Serialize a layout as JSON for external viewers."""

    def encode(node: LayoutNode) -> dict:
        return {
            "label": node.label,
            "x": round(node.x, 6),
            "y": round(node.y, 6),
            "depth": node.depth,
            "annotation": node.annotation,
            "children": [encode(child) for child in node.children],
        }

    return json.dumps(encode(root), indent=2)


def layout_to_svg(root: LayoutNode, size: int = 800) -> str:
    """Render the layout as a static SVG snapshot (Figure 5 stand-in)."""
    half = size / 2.0
    scale = half * 0.95

    def disk(x: float, y: float) -> tuple[float, float]:
        return half + x * scale, half - y * scale

    lines: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}"'
        f' viewBox="0 0 {size} {size}">',
        f'<circle cx="{half}" cy="{half}" r="{scale}" fill="none" stroke="#ccc"/>',
    ]
    for node in root.walk():
        px, py = disk(node.x, node.y)
        for child in node.children:
            cx, cy = disk(child.x, child.y)
            lines.append(
                f'<line x1="{px:.1f}" y1="{py:.1f}" x2="{cx:.1f}" y2="{cy:.1f}"'
                ' stroke="#888" stroke-width="0.5"/>'
            )
    for node in root.walk():
        px, py = disk(node.x, node.y)
        radius = max(1.5, 5.0 - node.depth)
        lines.append(
            f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius:.1f}" fill="#2a6"/>'
        )
        if node.depth <= 1:
            lines.append(
                f'<text x="{px + 6:.1f}" y="{py:.1f}" font-size="9">{_svg_escape(node.label)}</text>'
            )
    lines.append("</svg>")
    return "\n".join(lines)


def _svg_escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
