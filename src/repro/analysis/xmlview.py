"""XML rendering of the CCSG (Figure 6).

The paper presents the CCSG as an XML document browsed in Internet
Explorer; the annotations on the figure define the schema we emit:
ObjectID, InvocationTimes, IncludedFunctionInstances, and the self /
descendent CPU consumptions "shown in [second, microsecond] format",
structured following the call hierarchy.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.analysis.ccsg import Ccsg, CcsgNode
from repro.analysis.cpu import CpuVector


def split_sec_usec(ns: int) -> tuple[int, int]:
    """Nanoseconds → the paper's [second, microsecond] pair."""
    seconds, remainder_ns = divmod(ns, 1_000_000_000)
    return int(seconds), int(remainder_ns // 1_000)


def _cpu_elements(parent: ET.Element, tag: str, vector: CpuVector) -> None:
    for processor, ns in sorted(vector.by_processor.items()):
        seconds, microseconds = split_sec_usec(ns)
        ET.SubElement(
            parent,
            tag,
            processor=processor,
            seconds=str(seconds),
            microseconds=str(microseconds),
        )
    if not vector.by_processor:
        element = ET.SubElement(parent, tag, seconds="0", microseconds="0")
        if vector.uncovered:
            element.set("uncovered", str(vector.uncovered))


def _node_element(parent: ET.Element, node: CcsgNode) -> None:
    element = ET.SubElement(
        parent,
        "Function",
        interface=node.interface,
        name=node.operation,
        ObjectID=node.object_id,
        InvocationTimes=str(node.invocation_times),
    )
    if node.component:
        element.set("component", node.component)
    _cpu_elements(element, "SelfCPUConsumption", node.self_cpu)
    _cpu_elements(element, "DescendentCPUConsumption", node.descendant_cpu)
    instances = ET.SubElement(element, "IncludedFunctionInstances")
    instances.set("count", str(len(node.instances)))
    for child in node.child_list():
        _node_element(element, child)


def render_ccsg_xml(ccsg: Ccsg, description: str = "") -> str:
    """Render the CCSG as an indented XML document string."""
    root = ET.Element("CCSG")
    if description:
        root.set("description", description)
    for node in ccsg.roots.values():
        _node_element(root, node)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def parse_ccsg_xml(document: str) -> ET.Element:
    """Parse a rendered CCSG back into an element tree (round-trip tests)."""
    return ET.fromstring(document.split("?>", 1)[-1])
