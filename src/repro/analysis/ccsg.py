"""CPU Consumption Summarization Graph (CCSG, Section 3.2 / Figure 6).

The CCSG synthesizes the per-invocation self/descendent CPU numbers with
the DSCG: invocation instances of the same function on the same component
object along the same call path aggregate into one node carrying

- ``ObjectID`` — the universal identifier of the object,
- ``InvocationTimes`` — how many times the function was invoked there,
- ``IncludedFunctionInstances`` — the aggregated invocation instances,
- ``SelfCPUConsumption`` / ``DescendentCPUConsumption`` — vectors over
  processor types, printed in the paper's ``[second, microsecond]``
  format by :mod:`repro.analysis.xmlview`.

Nodes are "structured following the call hierarchy": children of a CCSG
node are the aggregated children of its instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cpu import CpuAnalysis, CpuVector
from repro.analysis.dscg import CallNode, Dscg

AggKey = tuple[str, str, str]  # (interface, operation, object_id)


@dataclass
class CcsgNode:
    """One aggregated function node of the CCSG."""

    interface: str
    operation: str
    object_id: str
    component: str = ""
    invocation_times: int = 0
    instances: list[CallNode] = field(default_factory=list)
    self_cpu: CpuVector = field(default_factory=CpuVector)
    descendant_cpu: CpuVector = field(default_factory=CpuVector)
    children: dict[AggKey, "CcsgNode"] = field(default_factory=dict)

    @property
    def function(self) -> str:
        return f"{self.interface}::{self.operation}"

    def walk(self):
        yield self
        for child in self.children.values():
            yield from child.walk()

    def child_list(self) -> list["CcsgNode"]:
        return list(self.children.values())


@dataclass
class Ccsg:
    """The whole graph: a virtual root over per-call-path aggregates."""

    roots: dict[AggKey, CcsgNode] = field(default_factory=dict)

    def walk(self):
        for root in self.roots.values():
            yield from root.walk()

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def total_self_cpu(self) -> CpuVector:
        vector = CpuVector()
        for node in self.walk():
            vector.merge(node.self_cpu)
        return vector

    def find(self, interface: str, operation: str) -> list[CcsgNode]:
        return [
            node
            for node in self.walk()
            if node.interface == interface and node.operation == operation
        ]


def _aggregate_into(
    bucket: dict[AggKey, CcsgNode], call_node: CallNode, cpu: CpuAnalysis
) -> None:
    key = (call_node.interface, call_node.operation, call_node.object_id)
    node = bucket.get(key)
    if node is None:
        node = CcsgNode(
            interface=call_node.interface,
            operation=call_node.operation,
            object_id=call_node.object_id,
            component=call_node.component,
        )
        bucket[key] = node
    node.invocation_times += 1
    node.instances.append(call_node)
    node.self_cpu.add(call_node.server_processor_type, cpu.self_cpu(call_node))
    node.descendant_cpu.merge(cpu.descendant_cpu(call_node))
    for child in call_node.children:
        _aggregate_into(node.children, child, cpu)


def build_ccsg(
    dscg: Dscg,
    cpu: CpuAnalysis | None = None,
    roots_only: bool = True,
) -> Ccsg:
    """Aggregate a DSCG into its CCSG.

    With ``roots_only=True`` only chains that were not forked from another
    chain start top-level aggregates; forked chains are reachable through
    their forking node's descendent vector (and through ``roots_only=False``
    if a flat view is desired).
    """
    if cpu is None:
        cpu = CpuAnalysis(dscg)
    ccsg = Ccsg()
    trees = dscg.root_chains() if roots_only else list(dscg.chains.values())
    for tree in trees:
        for root in tree.roots:
            _aggregate_into(ccsg.roots, root, cpu)
    return ccsg
