"""Call-path profiling over the DSCG.

The DSCG "is exactly the proposed call path" of Hall & Goldberg [4]: the
complete chain from a root invocation down to each function, not merely
depth-1 caller/callee edges. This module aggregates latency and CPU per
unique call path, extending single-process call-path profiling to the
multithreaded, distributed case (Section 3.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.analysis.cpu import CpuAnalysis
from repro.analysis.dscg import CallNode, Dscg
from repro.analysis.latency import end_to_end_latency


def path_of(node: CallNode) -> tuple[str, ...]:
    """The call path: functions from the chain root down to this node."""
    parts: list[str] = []
    current: CallNode | None = node
    while current is not None:
        parts.append(current.function)
        current = current.parent
    return tuple(reversed(parts))


@dataclass
class CallPathProfile:
    """Aggregate metrics for one unique call path."""

    path: tuple[str, ...]
    count: int = 0
    total_latency_ns: int = 0
    latency_samples: int = 0
    total_self_cpu_ns: int = 0
    cpu_samples: int = 0

    @property
    def mean_latency_ns(self) -> float:
        return self.total_latency_ns / self.latency_samples if self.latency_samples else 0.0

    @property
    def mean_self_cpu_ns(self) -> float:
        return self.total_self_cpu_ns / self.cpu_samples if self.cpu_samples else 0.0

    @property
    def display(self) -> str:
        return " / ".join(self.path)


def call_path_profiles(
    dscg: Dscg, cpu: CpuAnalysis | None = None
) -> dict[tuple[str, ...], CallPathProfile]:
    """Aggregate every invocation into its call-path bucket."""
    if cpu is None:
        cpu = CpuAnalysis(dscg)
    profiles: dict[tuple[str, ...], CallPathProfile] = {}
    for node in dscg.walk():
        path = path_of(node)
        profile = profiles.get(path)
        if profile is None:
            profile = CallPathProfile(path=path)
            profiles[path] = profile
        profile.count += 1
        latency = end_to_end_latency(node)
        if latency is not None:
            profile.total_latency_ns += latency
            profile.latency_samples += 1
        self_cpu = cpu.self_cpu(node)
        if self_cpu is not None:
            profile.total_self_cpu_ns += self_cpu
            profile.cpu_samples += 1
    return profiles


def depth1_profile(dscg: Dscg) -> dict[tuple[str, str], int]:
    """GPROF-style depth-1 caller/callee counts — the paper's baseline.

    Demonstrates the information loss relative to full call paths: two
    distinct paths ``A→C`` and ``B→C`` collapse into the same callee row.
    """
    edges: dict[tuple[str, str], int] = defaultdict(int)
    for node in dscg.walk():
        caller = node.parent.function if node.parent is not None else "<root>"
        edges[(caller, node.function)] += 1
    return dict(edges)
