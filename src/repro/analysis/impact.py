"""CPU-impact estimation (after HP Labs report HPL-2002-50 [9]).

The paper's CPU characterization is backed by a companion report titled
"Characterization and **Impact Estimation** of CPU Consumption in
Multi-Threaded Distributed Applications". With self/descendent CPU per
invocation available, the natural what-if follows: *if function F's self
CPU were scaled by a factor s, how much total CPU would each chain (and
the system) save?* Because SC/DC decompose exactly, the estimate is
linear and needs no re-execution:

    saving(F, s) = (1 - s) × Σ SC over F's invocation instances

This module ranks functions by that system-wide saving and projects
per-chain totals, giving the "which component should we optimize first"
answer the paper's motivation calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cpu import CpuAnalysis
from repro.analysis.dscg import Dscg


@dataclass
class FunctionImpact:
    """What scaling one function's self CPU does system-wide."""

    function: str
    invocation_count: int
    total_self_cpu_ns: int
    system_total_ns: int
    scale: float

    @property
    def saving_ns(self) -> int:
        return int((1.0 - self.scale) * self.total_self_cpu_ns)

    @property
    def system_share(self) -> float:
        """Fraction of all CPU attributable to this function's self time."""
        if not self.system_total_ns:
            return 0.0
        return self.total_self_cpu_ns / self.system_total_ns

    @property
    def projected_system_total_ns(self) -> int:
        return self.system_total_ns - self.saving_ns


@dataclass
class ChainImpact:
    """Projected total of one chain under the what-if."""

    chain_uuid: str
    original_total_ns: int
    projected_total_ns: int

    @property
    def saving_ns(self) -> int:
        return self.original_total_ns - self.projected_total_ns


@dataclass
class ImpactReport:
    function: str
    scale: float
    system: FunctionImpact
    chains: list[ChainImpact] = field(default_factory=list)

    def most_improved_chain(self) -> ChainImpact | None:
        if not self.chains:
            return None
        return max(self.chains, key=lambda c: c.saving_ns)


class ImpactEstimator:
    """What-if projections over one DSCG's CPU accounting."""

    def __init__(self, dscg: Dscg, cpu: CpuAnalysis | None = None):
        self.dscg = dscg
        self.cpu = cpu if cpu is not None else CpuAnalysis(dscg)
        self._system_total = self.cpu.total_by_processor().total_ns()

    # ------------------------------------------------------------------

    def estimate(self, function: str, scale: float = 0.5) -> ImpactReport:
        """Project scaling ``function``'s self CPU by ``scale`` (0..1+).

        ``scale=0.5`` models making it twice as fast; ``scale=0`` removes
        it entirely; values >1 model regressions.
        """
        if scale < 0:
            raise ValueError("scale must be non-negative")
        total_self = 0
        count = 0
        per_chain_self: dict[str, int] = {}
        for tree in self.dscg.chains.values():
            chain_self = 0
            for node in tree.walk():
                if node.function != function:
                    continue
                self_cpu = self.cpu.self_cpu(node)
                if self_cpu is None:
                    continue
                count += 1
                total_self += self_cpu
                chain_self += self_cpu
            if chain_self:
                per_chain_self[tree.chain_uuid] = chain_self

        system = FunctionImpact(
            function=function,
            invocation_count=count,
            total_self_cpu_ns=total_self,
            system_total_ns=self._system_total,
            scale=scale,
        )
        report = ImpactReport(function=function, scale=scale, system=system)
        for tree in self.dscg.chains.values():
            chain_total = 0
            for root in tree.roots:
                chain_total += self.cpu.inclusive_cpu(root).total_ns()
            saved = int((1.0 - scale) * per_chain_self.get(tree.chain_uuid, 0))
            report.chains.append(
                ChainImpact(
                    chain_uuid=tree.chain_uuid,
                    original_total_ns=chain_total,
                    projected_total_ns=chain_total - saved,
                )
            )
        return report

    def rank_by_saving(self, scale: float = 0.5, top: int = 10) -> list[FunctionImpact]:
        """Functions ranked by system-wide saving at the given scale."""
        functions = {node.function for node in self.dscg.walk()}
        impacts = [self.estimate(function, scale).system for function in functions]
        impacts.sort(key=lambda impact: impact.saving_ns, reverse=True)
        return impacts[:top]


def render_impact(report: ImpactReport) -> str:
    """Human-readable what-if summary."""
    system = report.system
    lines = [
        f"what-if: {report.function} self CPU x{report.scale:g}",
        f"  invocations           : {system.invocation_count}",
        f"  self CPU today        : {system.total_self_cpu_ns / 1e6:.3f} ms"
        f" ({system.system_share * 100:.1f}% of system)",
        f"  projected saving      : {system.saving_ns / 1e6:.3f} ms",
        f"  system total          : {system.system_total_ns / 1e6:.3f} ms ->"
        f" {system.projected_system_total_ns / 1e6:.3f} ms",
    ]
    best = report.most_improved_chain()
    if best is not None and best.saving_ns > 0:
        lines.append(
            f"  most improved chain   : {best.chain_uuid[:8]}"
            f" ({best.original_total_ns / 1e6:.3f} ->"
            f" {best.projected_total_ns / 1e6:.3f} ms)"
        )
    return "\n".join(lines)
