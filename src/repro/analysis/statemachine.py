"""Causality reconstruction — the Figure-4 state machine.

For each Function UUID, the analyzer scans the event records in ascending
event-number order and rebuilds the call hierarchy, "similar to the
compiler parsing that creates an abstract syntax tree and performs type
checking". The machine is a pushdown automaton: starts open a frame,
matching ends close it, and the event repeating patterns of Table 1
uniquely determine sibling versus parent/child structure.

Transitions (solid lines in Figure 4 = synchronous, dashed = oneway):

- ``F.stub_start``  → push a new frame as a child of the open frame.
- ``F.skel_start``  → attach to the open frame (sync), or open a
  skeleton-side oneway root when the chain begins with it.
- ``F.skel_end``    → attach; closes a skeleton-side oneway frame.
- ``F.stub_end``    → attach and pop the frame (sync return, or
  stub-side oneway return).

Any record fitting none of these takes the "abnormal" transition: the
analyzer records the failure and restarts from the next log record
(Section 3.1). Mingled causal chains — the COM STA hazard of Section 2.2
— surface as abnormal events, which is how the benchmarks count them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.events import CallKind, TracingEvent
from repro.core.records import ProbeRecord
from repro.analysis.dscg import AbnormalEvent, CallNode, ChainTree, Dscg

if TYPE_CHECKING:
    from repro.store.backend import StorageBackend


def _same_call(node: CallNode, record: ProbeRecord) -> bool:
    return (
        node.interface == record.interface
        and node.operation == record.operation
        and node.object_id == record.object_id
    )


def _node_from_record(record: ProbeRecord, oneway_side: str) -> CallNode:
    return CallNode(
        interface=record.interface,
        operation=record.operation,
        object_id=record.object_id,
        component=record.component,
        chain_uuid=record.chain_uuid,
        call_kind=record.call_kind,
        collocated=record.collocated,
        domain=record.domain,
        oneway_side=oneway_side,
        forked_chain_uuid=record.child_chain_uuid,
    )


def reconstruct_chain(chain_uuid: str, records: Sequence[ProbeRecord]) -> ChainTree:
    """Unfold one chain's sorted event records into a tree Ti."""
    tree = ChainTree(chain_uuid=chain_uuid)
    stack: list[CallNode] = []

    def abnormal(reason: str, record: ProbeRecord) -> None:
        tree.abnormal.append(
            AbnormalEvent(
                chain_uuid=chain_uuid,
                event_seq=record.event_seq,
                reason=reason,
                record=record,
            )
        )

    for record in records:
        event = record.event
        top = stack[-1] if stack else None

        if event is TracingEvent.STUB_START:
            oneway_side = "stub" if record.call_kind is CallKind.ONEWAY else ""
            node = _node_from_record(record, oneway_side)
            node.records[event] = record
            if top is not None:
                top.add_child(node)
            else:
                tree.roots.append(node)
            stack.append(node)

        elif event is TracingEvent.SKEL_START:
            if (
                top is not None
                and _same_call(top, record)
                and TracingEvent.STUB_START in top.records
                and TracingEvent.SKEL_START not in top.records
            ):
                top.records[event] = record
            elif top is None:
                # Chain begins at a skeleton: either the skeleton side of a
                # oneway fork (the dashed Figure-4 path) or a sync call
                # whose client process is unmonitored.
                oneway_side = "skel" if record.call_kind is CallKind.ONEWAY else ""
                node = _node_from_record(record, oneway_side)
                node.records[event] = record
                if record.call_kind is not CallKind.ONEWAY:
                    node.partial = True
                tree.roots.append(node)
                stack.append(node)
            else:
                abnormal(
                    f"skel_start for {record.interface}::{record.operation} does not"
                    f" match open frame {top.function if top else '<none>'}",
                    record,
                )

        elif event is TracingEvent.SKEL_END:
            if (
                top is not None
                and _same_call(top, record)
                and TracingEvent.SKEL_START in top.records
                and TracingEvent.SKEL_END not in top.records
            ):
                top.records[event] = record
                # A skeleton-side frame with no stub side closes here:
                # oneway skeleton-side return, or an unmonitored client.
                if TracingEvent.STUB_START not in top.records:
                    stack.pop()
            else:
                abnormal(
                    f"skel_end for {record.interface}::{record.operation} without"
                    " a matching open skel_start",
                    record,
                )

        elif event is TracingEvent.STUB_END:
            if (
                top is not None
                and _same_call(top, record)
                and TracingEvent.STUB_START in top.records
                and TracingEvent.STUB_END not in top.records
            ):
                top.records[event] = record
                if top.call_kind is not CallKind.ONEWAY and (
                    TracingEvent.SKEL_START not in top.records
                    or TracingEvent.SKEL_END not in top.records
                ):
                    # Sync call whose server side produced no records
                    # (unmonitored peer process).
                    top.partial = True
                stack.pop()
            else:
                abnormal(
                    f"stub_end for {record.interface}::{record.operation} does not"
                    f" close open frame {top.function if top else '<none>'}",
                    record,
                )

    for leftover in stack:
        # Salvage, not discard: the frame keeps its place in the tree but
        # is flagged partial so latency math and reports can exclude it.
        leftover.partial = True
        tree.abnormal.append(
            AbnormalEvent(
                chain_uuid=chain_uuid,
                event_seq=-1,
                reason=f"call {leftover.function} never completed (missing end events)",
            )
        )
    return tree


def reconstruct_from_records(records: Iterable[ProbeRecord]) -> Dscg:
    """Build a DSCG directly from in-memory records (tests, small runs)."""
    by_chain: dict[str, list[ProbeRecord]] = defaultdict(list)
    for record in records:
        by_chain[record.chain_uuid].append(record)
    dscg = Dscg()
    for chain_uuid, chain_records in by_chain.items():
        chain_records.sort(key=lambda r: r.event_seq)
        dscg.add_chain(reconstruct_chain(chain_uuid, chain_records))
    dscg.link_chains()
    return dscg


def reconstruct(
    database: "StorageBackend",
    run_id: str,
    workers: int = 1,
    annotate: bool = False,
) -> Dscg:
    """Build the DSCG for one collected run.

    The two standard queries of Section 3.1 are fused into one grouped
    scan (``chains_for_run`` on any :class:`~repro.store.StorageBackend`)
    that streams each chain's sorted records in turn — no per-chain query
    round-trip. Both backends honor the same ordering contract, so the
    DSCG is bit-identical whether the run lives in SQLite or in the
    segment store.

    ``workers > 1`` shards the sorted chain-uuid space across a worker
    pool (chains reconstruct independently; see
    :mod:`repro.analysis.parallel`); ``workers=0`` picks a pool size from
    the host CPU count. ``annotate=True`` additionally stamps each node's
    chain-local ``latency_ns``/``self_cpu_ns`` inside the same pass.
    """
    if workers == 0 or workers > 1:
        from repro.analysis.parallel import reconstruct_sharded

        return reconstruct_sharded(
            database, run_id, workers=workers or None, annotate=annotate
        )
    from repro.analysis.cpu import annotate_chain_self_cpu
    from repro.analysis.latency import annotate_chain_latency

    dscg = Dscg()
    for chain_uuid, records in database.chains_for_run(run_id):
        tree = reconstruct_chain(chain_uuid, records)
        if annotate:
            annotate_chain_latency(tree)
            annotate_chain_self_cpu(tree)
        dscg.add_chain(tree)
    dscg.link_chains()
    return dscg
