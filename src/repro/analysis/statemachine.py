"""Causality reconstruction — the Figure-4 state machine.

For each Function UUID, the analyzer scans the event records in ascending
event-number order and rebuilds the call hierarchy, "similar to the
compiler parsing that creates an abstract syntax tree and performs type
checking". The machine is a pushdown automaton: starts open a frame,
matching ends close it, and the event repeating patterns of Table 1
uniquely determine sibling versus parent/child structure.

Transitions (solid lines in Figure 4 = synchronous, dashed = oneway):

- ``F.stub_start``  → push a new frame as a child of the open frame.
- ``F.skel_start``  → attach to the open frame (sync), or open a
  skeleton-side oneway root when the chain begins with it.
- ``F.skel_end``    → attach; closes a skeleton-side oneway frame.
- ``F.stub_end``    → attach and pop the frame (sync return, or
  stub-side oneway return).

Any record fitting none of these takes the "abnormal" transition: the
analyzer records the failure and restarts from the next log record
(Section 3.1). Mingled causal chains — the COM STA hazard of Section 2.2
— surface as abnormal events, which is how the benchmarks count them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.events import CallKind, TracingEvent
from repro.core.records import ProbeRecord
from repro.analysis.dscg import AbnormalEvent, CallNode, ChainTree, Dscg

if TYPE_CHECKING:
    from repro.store.backend import StorageBackend
    from repro.store.query import ScanPredicate


def _same_call(node: CallNode, record: ProbeRecord) -> bool:
    return (
        node.interface == record.interface
        and node.operation == record.operation
        and node.object_id == record.object_id
    )


def _node_from_record(record: ProbeRecord, oneway_side: str) -> CallNode:
    return CallNode(
        interface=record.interface,
        operation=record.operation,
        object_id=record.object_id,
        component=record.component,
        chain_uuid=record.chain_uuid,
        call_kind=record.call_kind,
        collocated=record.collocated,
        domain=record.domain,
        oneway_side=oneway_side,
        forked_chain_uuid=record.child_chain_uuid,
    )


class ChainBuilder:
    """Incremental Figure-4 pushdown automaton for one causal chain.

    Both reconstruction paths run through this class: the batch analyzer
    (:func:`reconstruct_chain`) applies a pre-sorted record list, and the
    streaming reconstructor (:mod:`repro.analysis.streaming`) applies
    records one at a time as they arrive. A single transition
    implementation is what makes the streaming engine's final chain set
    bit-identical to the batch analyzer's on the same record sequence.

    :meth:`apply` returns the :class:`CallNode` whose measured frame the
    record *closed* (sync/stub-side return at ``stub_end``, skeleton-only
    frame at ``skel_end``), or ``None`` — the hook live detectors use to
    observe completions without re-walking the tree.
    """

    __slots__ = ("tree", "stack", "finished")

    def __init__(self, chain_uuid: str):
        self.tree = ChainTree(chain_uuid=chain_uuid)
        self.stack: list[CallNode] = []
        self.finished = False

    def _abnormal(self, reason: str, record: ProbeRecord) -> None:
        self.tree.abnormal.append(
            AbnormalEvent(
                chain_uuid=self.tree.chain_uuid,
                event_seq=record.event_seq,
                reason=reason,
                record=record,
            )
        )

    def apply(self, record: ProbeRecord) -> CallNode | None:
        """Advance the machine with one record; return the closed frame."""
        event = record.event
        stack = self.stack
        top = stack[-1] if stack else None

        if event is TracingEvent.STUB_START:
            oneway_side = "stub" if record.call_kind is CallKind.ONEWAY else ""
            node = _node_from_record(record, oneway_side)
            node.records[event] = record
            if top is not None:
                top.add_child(node)
            else:
                self.tree.roots.append(node)
            stack.append(node)
            return None

        if event is TracingEvent.SKEL_START:
            if (
                top is not None
                and _same_call(top, record)
                and TracingEvent.STUB_START in top.records
                and TracingEvent.SKEL_START not in top.records
            ):
                top.records[event] = record
            elif top is None:
                # Chain begins at a skeleton: either the skeleton side of a
                # oneway fork (the dashed Figure-4 path) or a sync call
                # whose client process is unmonitored.
                oneway_side = "skel" if record.call_kind is CallKind.ONEWAY else ""
                node = _node_from_record(record, oneway_side)
                node.records[event] = record
                if record.call_kind is not CallKind.ONEWAY:
                    node.partial = True
                self.tree.roots.append(node)
                stack.append(node)
            else:
                self._abnormal(
                    f"skel_start for {record.interface}::{record.operation} does not"
                    f" match open frame {top.function if top else '<none>'}",
                    record,
                )
            return None

        if event is TracingEvent.SKEL_END:
            if (
                top is not None
                and _same_call(top, record)
                and TracingEvent.SKEL_START in top.records
                and TracingEvent.SKEL_END not in top.records
            ):
                top.records[event] = record
                # A skeleton-side frame with no stub side closes here:
                # oneway skeleton-side return, or an unmonitored client.
                if TracingEvent.STUB_START not in top.records:
                    return stack.pop()
            else:
                self._abnormal(
                    f"skel_end for {record.interface}::{record.operation} without"
                    " a matching open skel_start",
                    record,
                )
            return None

        if event is TracingEvent.STUB_END:
            if (
                top is not None
                and _same_call(top, record)
                and TracingEvent.STUB_START in top.records
                and TracingEvent.STUB_END not in top.records
            ):
                top.records[event] = record
                if top.call_kind is not CallKind.ONEWAY and (
                    TracingEvent.SKEL_START not in top.records
                    or TracingEvent.SKEL_END not in top.records
                ):
                    # Sync call whose server side produced no records
                    # (unmonitored peer process).
                    top.partial = True
                return stack.pop()
            self._abnormal(
                f"stub_end for {record.interface}::{record.operation} does not"
                f" close open frame {top.function if top else '<none>'}",
                record,
            )
        return None

    def finish(self) -> ChainTree:
        """Salvage any still-open frames and return the chain tree."""
        if not self.finished:
            self.finished = True
            for leftover in self.stack:
                # Salvage, not discard: the frame keeps its place in the
                # tree but is flagged partial so latency math and reports
                # can exclude it.
                leftover.partial = True
                self.tree.abnormal.append(
                    AbnormalEvent(
                        chain_uuid=self.tree.chain_uuid,
                        event_seq=-1,
                        reason=f"call {leftover.function} never completed"
                        " (missing end events)",
                    )
                )
        return self.tree


def reconstruct_chain(chain_uuid: str, records: Sequence[ProbeRecord]) -> ChainTree:
    """Unfold one chain's sorted event records into a tree Ti."""
    builder = ChainBuilder(chain_uuid)
    for record in records:
        builder.apply(record)
    return builder.finish()


def reconstruct_from_records(records: Iterable[ProbeRecord]) -> Dscg:
    """Build a DSCG directly from in-memory records (tests, small runs)."""
    by_chain: dict[str, list[ProbeRecord]] = defaultdict(list)
    for record in records:
        by_chain[record.chain_uuid].append(record)
    dscg = Dscg()
    for chain_uuid, chain_records in by_chain.items():
        chain_records.sort(key=lambda r: r.event_seq)
        dscg.add_chain(reconstruct_chain(chain_uuid, chain_records))
    dscg.link_chains()
    return dscg


def reconstruct(
    database: "StorageBackend",
    run_id: str,
    workers: int = 1,
    annotate: bool = False,
    predicate: "ScanPredicate | None" = None,
) -> Dscg:
    """Build the DSCG for one collected run.

    The two standard queries of Section 3.1 are fused into one grouped
    scan (``chains_for_run`` on any :class:`~repro.store.StorageBackend`)
    that streams each chain's sorted records in turn — no per-chain query
    round-trip. Both backends honor the same ordering contract, so the
    DSCG is bit-identical whether the run lives in SQLite or in the
    segment store.

    ``workers > 1`` shards the sorted chain-uuid space across a worker
    pool (chains reconstruct independently; see
    :mod:`repro.analysis.parallel`); ``workers=0`` picks a pool size from
    the host CPU count. ``annotate=True`` additionally stamps each node's
    chain-local ``latency_ns``/``self_cpu_ns`` inside the same pass.

    ``predicate`` pushes a :class:`~repro.store.ScanPredicate` down into
    the backend scan, reconstructing only matching records (entire
    segments and chain groups are pruned before decode on the segment
    store). A chain-structure predicate — e.g. a time window that cuts
    calls in half — can of course surface as abnormal events; that is
    the record stream the caller asked to analyze.
    """
    if workers == 0 or workers > 1:
        from repro.analysis.parallel import reconstruct_sharded

        return reconstruct_sharded(
            database,
            run_id,
            workers=workers or None,
            annotate=annotate,
            predicate=predicate,
        )
    from repro.analysis.cpu import annotate_chain_self_cpu
    from repro.analysis.latency import annotate_chain_latency

    dscg = Dscg()
    for chain_uuid, records in database.chains_for_run(
        run_id, predicate=predicate
    ):
        tree = reconstruct_chain(chain_uuid, records)
        if annotate:
            annotate_chain_latency(tree)
            annotate_chain_self_cpu(tree)
        dscg.add_chain(tree)
    dscg.link_chains()
    return dscg
