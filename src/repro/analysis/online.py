"""On-line causality monitoring (paper future work, Section 6).

"Other promising avenues for future research are ... to apply the global
causality capturing technique from the on-line perspective for
application-level system management."

The off-line analyzer collects at quiescence; this module consumes probe
records *as they are produced* and maintains live per-chain state with
the same Figure-4 state machine semantics, exposing:

- currently open invocations (who is in flight, where, for how long),
- per-function running latency statistics,
- threshold alerts (latency SLO violations, abnormal transitions),

which is exactly the "runtime quality of adaptation" hook the paper
contrasts with BBN's Resource Status Service.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, NamedTuple

from repro.analysis.quantiles import P2Quantile
from repro.core.events import CallKind, TracingEvent
from repro.core.records import ProbeRecord
from repro.platform.process import SimProcess
from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
)


@dataclass
class OpenInvocation:
    """One in-flight call on a live chain."""

    function: str
    object_id: str
    chain_uuid: str
    started_wall_ns: int | None
    depth: int
    #: Which probe opened the frame: "stub", or "skel" for the skeleton
    #: side of a oneway fork / an unmonitored client's call.
    opened_by: str = "stub"


@dataclass
class Alert:
    kind: str  # "latency" | "abnormal"
    function: str
    chain_uuid: str
    detail: str
    latency_ns: int | None = None


class LatencyStats(NamedTuple):
    """Per-function completed-call statistics (all latencies in ns)."""

    count: int
    mean_ns: float
    max_ns: int
    p50_ns: float
    p95_ns: float
    p99_ns: float


@dataclass
class _LiveStats:
    count: int = 0
    total_ns: int = 0
    max_ns: int = 0
    # Streaming P² quantile markers: O(1) memory per function however
    # long the run, no sample buffer to bound or rotate.
    p50: P2Quantile = field(default_factory=lambda: P2Quantile(0.50))
    p95: P2Quantile = field(default_factory=lambda: P2Quantile(0.95))
    p99: P2Quantile = field(default_factory=lambda: P2Quantile(0.99))

    def add(self, latency_ns: int) -> None:
        self.count += 1
        self.total_ns += latency_ns
        self.max_ns = max(self.max_ns, latency_ns)
        self.p50.observe(latency_ns)
        self.p95.observe(latency_ns)
        self.p99.observe(latency_ns)

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def snapshot(self) -> LatencyStats:
        return LatencyStats(
            count=self.count,
            mean_ns=self.mean_ns,
            max_ns=self.max_ns,
            p50_ns=self.p50.value(),
            p95_ns=self.p95.value(),
            p99_ns=self.p99.value(),
        )


class OnlineMonitor:
    """Streaming analyzer over live probe records.

    Feed records with :meth:`ingest` (or attach to processes and call
    :meth:`poll`). Thread-safe; alert callbacks fire inline with ingest.
    """

    def __init__(
        self,
        latency_slo_ns: int | None = None,
        on_alert: Callable[[Alert], None] | None = None,
        registry: MetricsRegistry | None = None,
        max_pending: int | None = 100_000,
    ):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        self.latency_slo_ns = latency_slo_ns
        self.on_alert = on_alert
        #: Bound on buffered out-of-order records across all chains; a
        #: chain whose gap record was lost in flight must not grow the
        #: monitor without limit. Overflow drops the incoming record.
        self.max_pending = max_pending
        self.pending_dropped = 0
        # Live telemetry pipeline (Section 6, "on-line perspective"):
        # with a registry attached, every ingest keeps scrape-ready
        # gauges/histograms current; without one these are no-ops.
        if registry is not None:
            self._m_inflight = registry.gauge(
                "repro_online_inflight_invocations",
                "Invocations currently open on live causal chains.",
            )
            self._m_live_chains = registry.gauge(
                "repro_online_live_chains",
                "Causal chains with at least one open invocation.",
            )
            self._m_completed = registry.counter(
                "repro_online_completed_calls_total",
                "Invocations completed (stub_end observed and matched).",
            )
            self._m_latency = registry.histogram(
                "repro_online_call_latency_ns",
                "Rolling end-to-end latency of completed calls, in ns.",
                labels=("function",),
            )
            self._m_slo_breaches = registry.counter(
                "repro_online_slo_breaches_total",
                "Completed calls whose latency exceeded the configured SLO.",
            )
            self._m_abnormal = registry.counter(
                "repro_online_abnormal_events_total",
                "Records that violated the Figure-4 state machine.",
            )
            self._m_pending = registry.gauge(
                "repro_online_pending_records",
                "Out-of-order records buffered awaiting their gap record.",
            )
            self._m_pending_dropped = registry.counter(
                "repro_online_pending_dropped_total",
                "Out-of-order records dropped because the buffer was full.",
            )
        else:
            self._m_inflight = NULL_GAUGE
            self._m_live_chains = NULL_GAUGE
            self._m_completed = NULL_COUNTER
            self._m_latency = NULL_HISTOGRAM
            self._m_slo_breaches = NULL_COUNTER
            self._m_abnormal = NULL_COUNTER
            self._m_pending = NULL_GAUGE
            self._m_pending_dropped = NULL_COUNTER
        self._stacks: dict[str, list[OpenInvocation]] = defaultdict(list)
        self._stats: dict[str, _LiveStats] = defaultdict(_LiveStats)
        self._alerts: list[Alert] = []
        self._completed_calls = 0
        self._abnormal = 0
        self._lock = threading.Lock()
        self._cursors: dict[int, Any] = {}
        # Records from different process buffers arrive interleaved; the
        # FTL's event number lets us re-serialize each chain on the fly.
        self._expected_seq: dict[str, int] = defaultdict(int)
        self._pending: dict[str, dict[int, ProbeRecord]] = defaultdict(dict)
        self._pending_total = 0
        #: One overflow alert per saturation episode, not one per drop.
        self._overflow_alerted = False

    # ------------------------------------------------------------------

    def ingest(self, record: ProbeRecord) -> None:
        """Advance live chain state with one record."""
        with self._lock:
            self._enqueue_locked(record)

    def ingest_many(self, records) -> None:
        with self._lock:
            for record in records:
                self._enqueue_locked(record)

    def _enqueue_locked(self, record: ProbeRecord) -> None:
        """Re-serialize per chain by event number before applying."""
        chain = record.chain_uuid
        expected = self._expected_seq[chain]
        if record.event_seq < expected:
            # A duplicate or an event number collision: genuinely abnormal.
            self._abnormal_event(record)
            return
        if record.event_seq > expected:
            bucket = self._pending[chain]
            if record.event_seq not in bucket:
                if (
                    self.max_pending is not None
                    and self._pending_total >= self.max_pending
                ):
                    self.pending_dropped += 1
                    self._m_pending_dropped.inc()
                    if not self._overflow_alerted:
                        self._overflow_alerted = True
                        self._raise_alert(
                            Alert(
                                kind="overflow",
                                function=record.function,
                                chain_uuid=chain,
                                detail=f"pending-record buffer full"
                                f" ({self.max_pending}); dropping"
                                f" out-of-order records",
                            )
                        )
                    return
                self._pending_total += 1
                self._m_pending.inc()
            bucket[record.event_seq] = record
            return
        self._ingest_locked(record)
        self._expected_seq[chain] = expected + 1
        pending = self._pending.get(chain)
        while pending:
            next_record = pending.pop(self._expected_seq[chain], None)
            if next_record is None:
                break
            self._pending_total -= 1
            self._m_pending.dec()
            self._ingest_locked(next_record)
            self._expected_seq[chain] += 1
        if (
            self._overflow_alerted
            and self.max_pending is not None
            and self._pending_total < self.max_pending
        ):
            self._overflow_alerted = False

    def poll(self, processes: list[SimProcess]) -> int:
        """Pull any new records from process buffers (non-draining).

        Buffers that expose :meth:`~repro.platform.process.LocalLogBuffer.read_from`
        are read incrementally through its cursor; with per-thread
        segmented buffers a flat index into ``snapshot()`` would re-read
        (or skip) records as older segments keep growing.
        """
        new = 0
        with self._lock:
            for process in processes:
                buffer = process.log_buffer
                read_from = getattr(buffer, "read_from", None)
                if read_from is not None:
                    records, cursor = read_from(self._cursors.get(process.pid))
                    self._cursors[process.pid] = cursor
                else:
                    snapshot = buffer.snapshot()
                    offset = self._cursors.get(process.pid, 0)
                    records = snapshot[offset:]
                    self._cursors[process.pid] = len(snapshot)
                for record in records:
                    self._enqueue_locked(record)
                    new += 1
        return new

    # ------------------------------------------------------------------

    def _ingest_locked(self, record: ProbeRecord) -> None:
        stack = self._stacks[record.chain_uuid]
        event = record.event
        if event is TracingEvent.STUB_START or (
            event is TracingEvent.SKEL_START and not stack
        ):
            if not stack:
                self._m_live_chains.inc()
            stack.append(
                OpenInvocation(
                    function=record.function,
                    object_id=record.object_id,
                    chain_uuid=record.chain_uuid,
                    started_wall_ns=record.wall_end,
                    depth=len(stack) + 1,
                    opened_by="stub" if event is TracingEvent.STUB_START else "skel",
                )
            )
            self._m_inflight.inc()
            return
        if event in (TracingEvent.SKEL_START, TracingEvent.SKEL_END):
            if not stack or stack[-1].function != record.function:
                self._abnormal_event(record)
            elif event is TracingEvent.SKEL_END and stack[-1].opened_by == "skel":
                # A frame with no stub side (oneway skeleton side, or an
                # unmonitored client) completes at skel_end — its measured
                # window is probe 2 end .. probe 3 start (Section 3.2).
                self._complete(stack, record)
            return
        if event is TracingEvent.STUB_END:
            if not stack or stack[-1].function != record.function:
                self._abnormal_event(record)
                return
            self._complete(stack, record)

    def _complete(self, stack: list[OpenInvocation], record: ProbeRecord) -> None:
        """Close the top frame at its end probe; update stats and metrics."""
        invocation = stack.pop()
        self._m_inflight.dec()
        if not stack:
            del self._stacks[record.chain_uuid]
            self._m_live_chains.dec()
        self._completed_calls += 1
        self._m_completed.inc()
        if invocation.started_wall_ns is not None and record.wall_start is not None:
            latency = record.wall_start - invocation.started_wall_ns
            self._stats[record.function].add(latency)
            self._m_latency.labels(record.function).observe(latency)
            if self.latency_slo_ns is not None and latency > self.latency_slo_ns:
                self._m_slo_breaches.inc()
                self._raise_alert(
                    Alert(
                        kind="latency",
                        function=record.function,
                        chain_uuid=record.chain_uuid,
                        detail=f"latency {latency}ns exceeds SLO"
                        f" {self.latency_slo_ns}ns",
                        latency_ns=latency,
                    )
                )

    def _abnormal_event(self, record: ProbeRecord) -> None:
        self._abnormal += 1
        self._m_abnormal.inc()
        self._raise_alert(
            Alert(
                kind="abnormal",
                function=record.function,
                chain_uuid=record.chain_uuid,
                detail=f"unexpected {record.event.name} at seq {record.event_seq}",
            )
        )

    def _raise_alert(self, alert: Alert) -> None:
        self._alerts.append(alert)
        if self.on_alert is not None:
            self.on_alert(alert)

    # ------------------------------------------------------------------
    # Views

    def open_invocations(self) -> list[OpenInvocation]:
        """Everything currently in flight, deepest frames last."""
        with self._lock:
            result = []
            for stack in self._stacks.values():
                result.extend(stack)
            return result

    def live_chain_count(self) -> int:
        with self._lock:
            return len(self._stacks)

    def completed_calls(self) -> int:
        with self._lock:
            return self._completed_calls

    def alerts(self) -> list[Alert]:
        with self._lock:
            return list(self._alerts)

    def pending_records(self) -> int:
        """Out-of-order records currently buffered awaiting their gap."""
        with self._lock:
            return self._pending_total

    def latency_stats(self) -> dict[str, LatencyStats]:
        """function -> :class:`LatencyStats` for completed calls.

        Percentiles are streaming P² estimates: exact up to five
        observations, marker-interpolated beyond — no retained samples.
        """
        with self._lock:
            return {
                function: stats.snapshot()
                for function, stats in self._stats.items()
            }
