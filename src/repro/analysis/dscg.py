"""The Dynamic System Call Graph (DSCG).

Each causal chain (one Function UUID) unfolds into a tree of
:class:`CallNode` invocations; the DSCG groups the chain trees {Ti} under
a virtual root and cross-links oneway forks (parent chain → child chain),
"capturing all component object invocation and preserving the complete
call chains the application ever experienced" (Section 3.1) — full call
paths, not the depth-1 caller/callee pairs of GPROF-style profilers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.events import CallKind, Domain, TracingEvent
from repro.core.records import ProbeRecord


@dataclass
class CallNode:
    """One function invocation in the reconstructed call hierarchy."""

    interface: str
    operation: str
    object_id: str
    component: str
    chain_uuid: str
    call_kind: CallKind = CallKind.SYNC
    collocated: bool = False
    domain: Domain = Domain.CORBA
    #: Which side(s) of a oneway call this node represents.
    oneway_side: str = ""  # "" | "stub" | "skel"
    records: dict[TracingEvent, ProbeRecord] = field(default_factory=dict)
    children: list["CallNode"] = field(default_factory=list)
    parent: "CallNode | None" = None
    #: UUID of the chain forked by this oneway stub-side call, if any.
    forked_chain_uuid: str | None = None
    #: Set when some probe records are missing (e.g. unmonitored peer).
    partial: bool = False

    @property
    def function(self) -> str:
        return f"{self.interface}::{self.operation}"

    @property
    def qualified(self) -> str:
        return f"{self.function}@{self.object_id}"

    def record(self, event: TracingEvent) -> ProbeRecord | None:
        return self.records.get(event)

    def add_child(self, child: "CallNode") -> None:
        child.parent = self
        self.children.append(child)

    def depth(self) -> int:
        depth, node = 0, self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def walk(self) -> Iterator["CallNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def subtree_size(self) -> int:
        return sum(1 for _ in self.walk())

    #: Execution locality helpers -------------------------------------

    @property
    def client_process(self) -> str | None:
        record = self.records.get(TracingEvent.STUB_START)
        return record.process if record else None

    @property
    def server_process(self) -> str | None:
        record = self.records.get(TracingEvent.SKEL_START)
        return record.process if record else None

    @property
    def server_processor_type(self) -> str | None:
        record = self.records.get(TracingEvent.SKEL_START)
        return record.processor_type if record else None

    @property
    def server_thread(self) -> tuple[str, int] | None:
        record = self.records.get(TracingEvent.SKEL_START)
        return (record.process, record.thread_id) if record else None

    def __repr__(self) -> str:
        return (
            f"CallNode({self.function}, kind={self.call_kind.value},"
            f" children={len(self.children)})"
        )


@dataclass
class AbnormalEvent:
    """A log record that violated the Figure-4 state machine."""

    chain_uuid: str
    event_seq: int
    reason: str
    record: ProbeRecord | None = None


@dataclass
class ChainTree:
    """One causal chain unfolded into a tree (Ti in the paper)."""

    chain_uuid: str
    roots: list[CallNode] = field(default_factory=list)
    abnormal: list[AbnormalEvent] = field(default_factory=list)
    #: Chain that forked this one via a oneway call (if any).
    parent_chain_uuid: str | None = None

    def walk(self) -> Iterator[CallNode]:
        for root in self.roots:
            yield from root.walk()

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    @property
    def is_clean(self) -> bool:
        return not self.abnormal


class Dscg:
    """The grouped forest of chain trees plus oneway cross-links."""

    def __init__(self):
        self.chains: dict[str, ChainTree] = {}
        #: (parent chain uuid, forking node) -> child chain uuid
        self.links: list[tuple[str, CallNode, str]] = []

    def add_chain(self, tree: ChainTree) -> None:
        self.chains[tree.chain_uuid] = tree

    def add_chains(self, trees: "Iterator[ChainTree] | list[ChainTree]") -> None:
        """Bulk-add chain trees (insertion order defines iteration order)."""
        for tree in trees:
            self.chains[tree.chain_uuid] = tree

    def link_chains(self) -> None:
        """Wire oneway forks: parent stub-side node → child chain tree."""
        self.links.clear()
        for tree in self.chains.values():
            for node in tree.walk():
                if node.forked_chain_uuid and node.forked_chain_uuid in self.chains:
                    child = self.chains[node.forked_chain_uuid]
                    child.parent_chain_uuid = tree.chain_uuid
                    self.links.append((tree.chain_uuid, node, child.chain_uuid))

    # ------------------------------------------------------------------

    def root_chains(self) -> list[ChainTree]:
        """Chains not forked from any other chain (the forest's top level)."""
        return [t for t in self.chains.values() if t.parent_chain_uuid is None]

    def walk(self) -> Iterator[CallNode]:
        for tree in self.chains.values():
            yield from tree.walk()

    def node_count(self) -> int:
        return sum(tree.node_count() for tree in self.chains.values())

    def abnormal_events(self) -> list[AbnormalEvent]:
        result: list[AbnormalEvent] = []
        for tree in self.chains.values():
            result.extend(tree.abnormal)
        return result

    def find_nodes(self, predicate: Callable[[CallNode], bool]) -> list[CallNode]:
        return [node for node in self.walk() if predicate(node)]

    def nodes_for_function(self, interface: str, operation: str) -> list[CallNode]:
        return self.find_nodes(
            lambda n: n.interface == interface and n.operation == operation
        )

    def max_depth(self) -> int:
        best = 0
        for tree in self.chains.values():
            stack = [(root, 1) for root in tree.roots]
            while stack:
                node, depth = stack.pop()
                best = max(best, depth)
                stack.extend((child, depth + 1) for child in node.children)
        return best

    def stats(self) -> dict[str, int]:
        """Summary counters used by the Figure-5 benchmark report."""
        functions: set[str] = set()
        interfaces: set[str] = set()
        components: set[str] = set()
        objects: set[str] = set()
        partial_chains: set[str] = set()
        nodes = 0
        partial_nodes = 0
        for node in self.walk():
            nodes += 1
            functions.add(node.function)
            interfaces.add(node.interface)
            components.add(node.component)
            objects.add(node.object_id)
            if node.partial:
                partial_nodes += 1
                partial_chains.add(node.chain_uuid)
        return {
            "chains": len(self.chains),
            "nodes": nodes,
            "unique_methods": len(functions),
            "unique_interfaces": len(interfaces),
            "unique_components": len(components),
            "unique_objects": len(objects),
            "oneway_links": len(self.links),
            "abnormal_events": len(self.abnormal_events()),
            "partial_nodes": partial_nodes,
            "partial_chains": len(partial_chains),
            "max_depth": self.max_depth(),
        }
