"""Off-line analyzer: DSCG reconstruction, latency, CPU, CCSG, views."""

from repro.analysis.ccsg import Ccsg, CcsgNode, build_ccsg
from repro.analysis.completeness import (
    LossReport,
    expected_events,
    loss_report,
    missing_events,
)
from repro.analysis.cpu import CpuAnalysis, CpuVector, self_cpu
from repro.analysis.critical_path import (
    CriticalPath,
    critical_path,
    critical_paths,
    render_critical_path,
)
from repro.analysis.impact import ImpactEstimator, ImpactReport, render_impact
from repro.analysis.online import Alert, OnlineMonitor, OpenInvocation
from repro.analysis.serialize import dscg_from_json, dscg_to_json
from repro.analysis.dscg import AbnormalEvent, CallNode, ChainTree, Dscg
from repro.analysis.hyperbolic import (
    HyperbolicLayout,
    LayoutNode,
    layout_to_json,
    layout_to_svg,
)
from repro.analysis.latency import (
    annotate_latency,
    causality_overhead,
    end_to_end_latency,
    latency_report,
)
from repro.analysis.callpath import call_path_profiles, depth1_profile, path_of
from repro.analysis.semantics import semantics_report
from repro.analysis.sequence_chart import render_sequence_chart, spans_from_records
from repro.analysis.statemachine import (
    reconstruct,
    reconstruct_chain,
    reconstruct_from_records,
)
from repro.analysis.parallel import default_workers, reconstruct_sharded
from repro.analysis.xmlview import render_ccsg_xml, split_sec_usec

__all__ = [
    "AbnormalEvent",
    "Alert",
    "CriticalPath",
    "ImpactEstimator",
    "ImpactReport",
    "OnlineMonitor",
    "render_impact",
    "OpenInvocation",
    "critical_path",
    "critical_paths",
    "dscg_from_json",
    "dscg_to_json",
    "render_critical_path",
    "CallNode",
    "Ccsg",
    "CcsgNode",
    "ChainTree",
    "CpuAnalysis",
    "CpuVector",
    "Dscg",
    "HyperbolicLayout",
    "LayoutNode",
    "LossReport",
    "annotate_latency",
    "expected_events",
    "loss_report",
    "missing_events",
    "build_ccsg",
    "call_path_profiles",
    "causality_overhead",
    "depth1_profile",
    "end_to_end_latency",
    "latency_report",
    "layout_to_json",
    "layout_to_svg",
    "path_of",
    "default_workers",
    "reconstruct",
    "reconstruct_chain",
    "reconstruct_from_records",
    "reconstruct_sharded",
    "render_ccsg_xml",
    "render_sequence_chart",
    "self_cpu",
    "semantics_report",
    "spans_from_records",
    "split_sec_usec",
]
