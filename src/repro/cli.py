"""Command-line front-end: ``python -m repro <command>``.

Commands operate on a monitoring store produced by
:class:`repro.collector.LogCollector` — a SQLite database file or a
segment-store directory, autodetected from the path — or demonstrate the
system with the bundled example applications:

- ``demo-pps``        run the PPS, collect into a store (``--store segment``)
- ``demo-embedded``   run the synthetic embedded system, collect
- ``summary``         DSCG summary of a collected run
- ``loss``            canonical loss-accounting JSON (capture + collection)
- ``latency``         per-function latency table
- ``cpu``             per-function self-CPU table
- ``ccsg``            emit the Figure-6 CCSG XML
- ``critical-path``   slowest chains' latency critical paths
- ``dscg-json``       export the annotated DSCG as JSON
- ``svg``             hyperbolic-layout SVG of the DSCG
- ``harness``         generate a replay harness script
- ``export-trace``    export a run as Chrome/Perfetto or OTLP trace JSON
- ``incidents``       streaming spike detection + causal root-cause ranking
- ``metrics``         run a demo with self-metrics on; print Prometheus text
- ``store-info``      segment/record/compaction report of a storage backend
- ``cluster``         real-socket multi-process deployments: up/run/collect/
  down a worker cluster, or verify cluster-vs-single DSCG/CCSG bit-identity
  (``cluster identity``)
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    CpuAnalysis,
    HyperbolicLayout,
    build_ccsg,
    critical_paths,
    layout_to_svg,
    reconstruct,
    render_ccsg_xml,
    render_critical_path,
)
from repro.analysis.report import cpu_table, dscg_summary, latency_table, loss_summary
from repro.analysis.serialize import dscg_to_json
from repro.collector import MonitoringDatabase
from repro.store import StorageBackend, open_store
from repro.testing_harness import derive_plan, render_harness_script


def _open_run(args) -> tuple[StorageBackend, str]:
    database = open_store(args.database)
    runs = database.runs()
    if not runs:
        raise SystemExit(f"no runs in {args.database}")
    run_id = args.run or runs[-1].run_id
    if run_id not in {r.run_id for r in runs}:
        raise SystemExit(f"run {run_id!r} not found; available:"
                         f" {[r.run_id for r in runs]}")
    return database, run_id


#: Reconstructed-DSCG memo shared by every subcommand, so driving several
#: commands in one process (tests, notebooks, library use) reconstructs
#: each run once. Keyed by database path + run id; runs are immutable
#: once collected, so entries only need evicting to bound memory.
_DSCG_CACHE: dict[tuple[str, str], "object"] = {}
_DSCG_CACHE_LIMIT = 4


def load_dscg(database: StorageBackend, run_id: str, workers: int = 1):
    """Memoized ``reconstruct(database, run_id)`` for the CLI subcommands."""
    if database.path == ":memory:":
        # Distinct in-memory databases share the same path; never alias them.
        return reconstruct(database, run_id, workers=workers)
    key = (database.path, run_id)
    dscg = _DSCG_CACHE.get(key)
    if dscg is None:
        dscg = reconstruct(database, run_id, workers=workers)
        while len(_DSCG_CACHE) >= _DSCG_CACHE_LIMIT:
            _DSCG_CACHE.pop(next(iter(_DSCG_CACHE)))
        _DSCG_CACHE[key] = dscg
    return dscg


def _load_dscg(args) -> "object":
    database, run_id = _open_run(args)
    return database, run_id, load_dscg(
        database, run_id, workers=getattr(args, "workers", 1)
    )


def _demo_backend(args) -> StorageBackend:
    """The collection sink a demo command writes to (``--store`` flag)."""
    return open_store(args.database, backend=getattr(args, "store", None))


def cmd_demo_pps(args) -> int:
    from repro.apps.pps import PpsSystem, four_process_deployment, monolithic_deployment
    from repro.collector import LogCollector
    from repro.core import MonitorMode

    deployment = (
        monolithic_deployment() if args.monolithic else four_process_deployment()
    )
    pps = PpsSystem(deployment, mode=MonitorMode[args.mode.upper()])
    try:
        pps.run(njobs=args.jobs, pages=args.pages, complexity=args.complexity)
        pps.quiesce()
        collector = LogCollector(backend=_demo_backend(args))
        run_id = collector.collect(pps.processes.values(),
                                   description=f"PPS {deployment.name} (CLI)")
        print(f"collected run {run_id!r} into {args.database}")
        return 0
    finally:
        pps.shutdown()


def cmd_demo_embedded(args) -> int:
    from repro.apps.embedded import EmbeddedConfig, EmbeddedSystem
    from repro.collector import LogCollector

    system = EmbeddedSystem(EmbeddedConfig())
    try:
        system.run(total_calls=args.calls, roots=args.roots)
        system.quiesce()
        collector = LogCollector(backend=_demo_backend(args))
        run_id = collector.collect(system.processes,
                                   description="embedded synthetic (CLI)")
        print(f"collected run {run_id!r} ({args.calls} calls) into {args.database}")
        return 0
    finally:
        system.shutdown()


def _collector_loss(database: StorageBackend, run_id: str) -> dict | None:
    """The ``extra["loss"]`` dict the collector stored for this run, if any."""
    for meta in database.runs():
        if meta.run_id == run_id:
            loss = meta.extra.get("loss") if meta.extra else None
            return loss if isinstance(loss, dict) else None
    return None


def cmd_summary(args) -> int:
    database, run_id, dscg = _load_dscg(args)
    print(f"run: {run_id}")
    print(dscg_summary(dscg))
    print(loss_summary(dscg, _collector_loss(database, run_id)))
    stats = database.population_stats(run_id)
    print(f"population: {stats}")
    return 0


def cmd_loss(args) -> int:
    """Canonical loss-accounting JSON: capture + collection, one object.

    Deterministic for a given database — sorted keys, no timestamps — so
    CI can diff the output of two replays of the same fault seed.
    """
    import json

    from repro.analysis import loss_report

    database, run_id, dscg = _load_dscg(args)
    accounting = {
        "capture": loss_report(dscg).to_dict(),
        "collection": _collector_loss(database, run_id),
    }
    _emit(args.output, json.dumps(accounting, indent=2, sort_keys=True))
    return 0


def cmd_latency(args) -> int:
    database, run_id, dscg = _load_dscg(args)
    print(latency_table(dscg, limit=args.limit))
    return 0


def cmd_cpu(args) -> int:
    database, run_id, dscg = _load_dscg(args)
    print(cpu_table(dscg, limit=args.limit))
    return 0


def cmd_ccsg(args) -> int:
    database, run_id, dscg = _load_dscg(args)
    xml = render_ccsg_xml(build_ccsg(dscg, CpuAnalysis(dscg)), description=run_id)
    _emit(args.output, xml)
    return 0


def cmd_critical_path(args) -> int:
    database, run_id, dscg = _load_dscg(args)
    paths = critical_paths(dscg, top=args.top)
    if not paths:
        print("(no measurable chains — was the run in latency mode?)")
        return 1
    for path in paths:
        print(render_critical_path(path))
        print()
    return 0


def cmd_impact(args) -> int:
    from repro.analysis.impact import ImpactEstimator, render_impact

    database, run_id, dscg = _load_dscg(args)
    estimator = ImpactEstimator(dscg)
    if args.function:
        print(render_impact(estimator.estimate(args.function, scale=args.scale)))
        return 0
    print(f"top functions by saving at self-CPU x{args.scale:g}:")
    for impact in estimator.rank_by_saving(scale=args.scale, top=args.top):
        if impact.saving_ns <= 0:
            continue
        print(
            f"  {impact.function:44s} saves {impact.saving_ns / 1e6:8.3f} ms"
            f" ({impact.system_share * 100:5.1f}% of system CPU)"
        )
    return 0


def cmd_dscg_json(args) -> int:
    database, run_id, dscg = _load_dscg(args)
    _emit(args.output, dscg_to_json(dscg))
    return 0


def cmd_svg(args) -> int:
    database, run_id, dscg = _load_dscg(args)
    layout = HyperbolicLayout().layout_dscg(dscg)
    _emit(args.output, layout_to_svg(layout))
    return 0


def cmd_harness(args) -> int:
    database, run_id, dscg = _load_dscg(args)
    script = render_harness_script(derive_plan(dscg),
                                   module_docstring=f"Derived from run {run_id!r}.")
    _emit(args.output, script)
    return 0


def cmd_export_trace(args) -> int:
    from repro.telemetry import render_chrome_trace, render_otlp

    incidents = None
    if args.incidents:
        from repro.analysis.streaming import incidents_from_json

        with open(args.incidents) as handle:
            incidents = incidents_from_json(handle.read())
    database, run_id, dscg = _load_dscg(args)
    indent = 2 if args.pretty else None
    if args.format == "chrome":
        text = render_chrome_trace(
            dscg, run_id=run_id, indent=indent, incidents=incidents
        )
    else:
        text = render_otlp(dscg, run_id=run_id, indent=indent, incidents=incidents)
    _emit(args.output, text)
    return 0


def cmd_incidents(args) -> int:
    """Streaming spike detection over a collected run (or the demo).

    Exits 1 when incidents fired — scriptable as a regression gate:
    ``repro incidents run.db && echo clean``.
    """
    from repro.analysis.streaming import (
        DetectionConfig,
        detect_run,
        incidents_to_json,
        seeded_incident_report,
    )

    config = DetectionConfig(
        window=args.window,
        min_samples=args.min_samples,
        z_threshold=args.z_threshold,
        persistence=args.persistence,
        cooldown=args.cooldown,
    )
    watch = None
    if args.watch:
        watch = lambda report: print(report.one_line(), flush=True)  # noqa: E731
    if args.demo_faults is not None:
        document, incidents = seeded_incident_report(
            args.demo_faults, calls=args.calls, config=config, watch=watch
        )
    else:
        if not args.database:
            raise SystemExit("incidents: provide a database or --demo-faults SEED")
        database, run_id = _open_run(args)
        detector = detect_run(database, run_id, config=config, on_incident=watch)
        document = incidents_to_json(
            detector.incidents, run_id=run_id, extra={"config": config.to_dict()}
        )
        incidents = detector.incidents
    _emit(args.output, document)
    return 1 if incidents else 0


def cmd_metrics(args) -> int:
    """Drive a demo workload with self-metrics enabled; print the scrape."""
    from repro import telemetry
    from repro.apps.pps import PpsSystem, four_process_deployment
    from repro.collector import LogCollector
    from repro.core import MonitorMode
    from repro.telemetry.pipeline import LiveMetricsPipeline

    registry = telemetry.enable(telemetry.MetricsRegistry())
    try:
        pps = PpsSystem(four_process_deployment(), mode=MonitorMode[args.mode.upper()])
        try:
            slo_ns = int(args.slo_ms * 1e6) if args.slo_ms is not None else None
            pipeline = LiveMetricsPipeline(
                pps.processes.values(), registry=registry, latency_slo_ns=slo_ns
            )
            pipeline.start(interval_s=0.02)
            pps.run(njobs=args.jobs, pages=args.pages, complexity=args.complexity)
            pps.quiesce()
            pipeline.stop()
            collector = LogCollector(
                MonitoringDatabase(args.database) if args.database else None
            )
            collector.collect(pps.processes.values(),
                              description="PPS telemetry demo (CLI)")
        finally:
            pps.shutdown()
        _emit(args.output, telemetry.render_prometheus(registry))
        return 0
    finally:
        telemetry.disable()


def _build_predicate(args):
    """A :class:`ScanPredicate` from the shared ``query`` flags (or None)."""
    from repro.store import ScanPredicate

    predicate = ScanPredicate(
        ts_min=args.since,
        ts_max=args.until,
        interfaces=frozenset(args.interface) if args.interface else None,
        operations=frozenset(args.operation) if args.operation else None,
        chain_prefix=args.chain_prefix,
    )
    return None if predicate.is_empty else predicate


def cmd_query(args) -> int:
    """Predicated store query: one run, or cross-run via the catalog."""
    import json

    from repro.store import RunCatalog, ScanStats, SegmentStore, run_query

    predicate = _build_predicate(args)
    if args.last is not None:
        # Cross-run catalog mode: fan the predicated scan over the newest
        # N runs, merging per-operation latency deterministically.
        database = open_store(args.database)
        if not isinstance(database, SegmentStore):
            raise SystemExit("query --last needs a segment store (the run"
                             " catalog lives in its directory layout)")
        result = RunCatalog(database).query(
            predicate, last_n=args.last, workers=args.workers
        ).to_dict()
    else:
        database, run_id = _open_run(args)
        stats = ScanStats()
        result = run_query(database, run_id, predicate, stats=stats)
    _emit(args.output, json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_store_info(args) -> int:
    """Per-run record/segment/compaction report of a storage backend."""
    import json

    from repro.store import RunCatalog, SegmentStore

    database = open_store(args.database)
    if isinstance(database, SegmentStore):
        info = database.store_info()
        if args.catalog:
            info["catalog"] = RunCatalog(database).catalog_info()
    elif args.catalog:
        raise SystemExit("store-info --catalog needs a segment store")
    else:
        info = {
            "backend": "sqlite",
            "path": database.path,
            "runs": [
                {
                    "run_id": meta.run_id,
                    "records": database.record_count(meta.run_id),
                    "chains": len(database.unique_chain_uuids(meta.run_id)),
                    "schema_version": (meta.extra or {}).get("schema_version"),
                }
                for meta in database.runs()
            ],
        }
    _emit(args.output, json.dumps(info, indent=2, sort_keys=True))
    return 0


def cmd_suite_list(args) -> int:
    """Print a suite's expanded scenario grid without running it."""
    from repro.scenarios import expand_grid, load_suite

    config = load_suite(args.suite)
    scenarios = expand_grid(config, seed=args.seed)
    print(f"suite {config.name}: {len(scenarios)} scenarios"
          f" across {len(config.grids)} grid(s)")
    for spec in scenarios:
        invariants = ",".join(i.name for i in spec.invariants) or "-"
        print(f"  [{spec.index:3d}] seed={spec.seed:>10} {spec.scenario_id}"
              f"  invariants={invariants}")
    return 0


def cmd_suite_run(args) -> int:
    """Run a suite and emit its machine-readable report."""
    import json

    from repro.scenarios import load_suite, run_suite

    config = load_suite(args.suite)
    report = run_suite(
        config, workers=args.workers, seed=args.seed, only=args.only or None
    )
    _emit(args.output, report.to_json())
    failures = report.failures()
    summary = (
        f"suite {report.suite}: {len(report.outcomes)} scenarios,"
        f" {len(failures)} failed"
    )
    print(summary, file=sys.stderr)
    for outcome in failures:
        failed = [r.name for r in outcome.invariants if not r.passed]
        print(f"  FAIL {outcome.scenario_id}"
              f" invariants={','.join(failed) or 'hooks'}", file=sys.stderr)
    return 1 if failures else 0


def cmd_cluster_identity(args) -> int:
    """Cluster-vs-single-process bit-identity check (in-process).

    Runs the seeded ring workload twice — once on a real worker-process
    cluster over TCP with sharded spool shipping, once inside this
    interpreter — and compares the canonical DSCG/CCSG documents byte
    for byte. Exit 0 only when every field is identical. The optional
    output files get each pass's document for CI to ``diff``.
    """
    import json
    import tempfile

    from repro.cluster.identity import run_identity_check

    with tempfile.TemporaryDirectory(prefix="repro-identity-") as workdir:
        outcome = run_identity_check(
            args.workers,
            args.calls,
            workdir,
            cluster_output=args.output_cluster,
            reference_output=args.output_single,
        )
    checks = outcome["checks"]
    print(json.dumps(checks, indent=2, sort_keys=True))
    for path in (args.output_cluster, args.output_single):
        if path:
            print(f"wrote {path}", file=sys.stderr)
    return 0 if checks["identical"] else 1


def cmd_cluster_up(args) -> int:
    """Launch the cluster service daemon and wait for it to come up."""
    import json
    import os
    import subprocess
    import time

    from repro.cluster.service import state_path

    path = state_path(args.state)
    if os.path.exists(path):
        raise SystemExit(f"cluster state already exists at {path};"
                         f" run `repro cluster down --state {args.state}` first")
    os.makedirs(args.state, exist_ok=True)
    log_path = os.path.join(args.state, "service.log")
    with open(log_path, "ab") as log:
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cluster.service",
                "--state", args.state,
                "--workers", str(args.workers),
                "--plane", args.plane,
            ],
            stdin=subprocess.DEVNULL,
            stdout=log,
            stderr=log,
            start_new_session=True,
        )
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(f"cluster service exited early"
                             f" (status {process.returncode}); see {log_path}")
        if os.path.exists(path):
            with open(path) as handle:
                state = json.load(handle)
            print(f"cluster up: {args.workers} worker(s), plane={args.plane},"
                  f" control port {state['port']}, state {path}")
            return 0
        time.sleep(0.05)
    process.kill()
    raise SystemExit(f"cluster failed to come up within {args.timeout:g}s;"
                     f" see {log_path}")


def cmd_cluster_run(args) -> int:
    """Drive work on a running cluster (monitored calls or a load step)."""
    import json

    from repro.cluster.service import request

    if args.rate is not None:
        reply = request(args.state, {
            "type": "run-load",
            "rate": args.rate,
            "arrivals": args.arrivals,
            "seed": args.seed,
            "max_inflight": args.max_inflight,
        })
    else:
        reply = request(args.state, {"type": "run-calls", "calls": args.calls})
    if not reply.get("ok"):
        raise SystemExit(f"cluster run failed: {reply.get('error')}")
    reply.pop("ok", None)
    _emit(args.output, json.dumps(reply, indent=2, sort_keys=True))
    return 0


def cmd_cluster_collect(args) -> int:
    """Collect every worker's spool into a store as one merged run."""
    from repro.cluster.service import request

    reply = request(args.state, {
        "type": "collect",
        "database": args.database,
        "run_id": args.run_id,
        "backend": getattr(args, "store", None),
        "description": args.description,
    })
    if not reply.get("ok"):
        raise SystemExit(f"cluster collect failed: {reply.get('error')}")
    print(f"collected run {args.run_id!r} ({reply['records']} records)"
          f" into {args.database}")
    return 0


def cmd_cluster_status(args) -> int:
    import json

    from repro.cluster.service import request

    reply = request(args.state, {"type": "status"}, timeout=30.0)
    if not reply.get("ok"):
        raise SystemExit(f"cluster status failed: {reply.get('error')}")
    reply.pop("ok", None)
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0 if all(reply["alive"].values()) else 1


def cmd_cluster_down(args) -> int:
    """Stop the cluster (and its service daemon).

    With ``--drain-into`` the workers are SIGTERMed and their final
    spools shipped into the given store before teardown.
    """
    from repro.cluster.service import request

    message: dict = {"type": "down"}
    if args.drain_into:
        message["drain_database"] = args.drain_into
        message["run_id"] = args.run_id
        message["backend"] = getattr(args, "store", None)
    reply = request(args.state, message)
    if not reply.get("ok"):
        raise SystemExit(f"cluster down failed: {reply.get('error')}")
    if "records" in reply:
        print(f"drained {reply['records']} record(s) into {args.drain_into}")
    print("cluster down")
    return 0


def _emit(output: str | None, text: str) -> None:
    if output:
        with open(output, "w") as handle:
            handle.write(text)
        print(f"wrote {output}")
    else:
        print(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Global causality capture toolkit (ICDCS 2003)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_flag(command):
        command.add_argument(
            "--store", default=None, choices=["sqlite", "segment"],
            help="storage backend (default: autodetect from the path;"
                 " directories hold segment stores, files SQLite)",
        )

    demo_pps = sub.add_parser("demo-pps", help="run the PPS and collect a database")
    demo_pps.add_argument("database")
    demo_pps.add_argument("--mode", default="cpu",
                          choices=["causality", "latency", "cpu", "semantics", "full"])
    demo_pps.add_argument("--jobs", type=int, default=3)
    demo_pps.add_argument("--pages", type=int, default=4)
    demo_pps.add_argument("--complexity", type=int, default=2)
    demo_pps.add_argument("--monolithic", action="store_true")
    add_store_flag(demo_pps)
    demo_pps.set_defaults(func=cmd_demo_pps)

    demo_embedded = sub.add_parser("demo-embedded",
                                   help="run the synthetic embedded system")
    demo_embedded.add_argument("database")
    demo_embedded.add_argument("--calls", type=int, default=5_000)
    demo_embedded.add_argument("--roots", type=int, default=8)
    add_store_flag(demo_embedded)
    demo_embedded.set_defaults(func=cmd_demo_embedded)

    store_info = sub.add_parser(
        "store-info", help="segment/record/compaction report of a storage backend"
    )
    store_info.add_argument("database")
    store_info.add_argument("--catalog", action="store_true",
                            help="include the run-catalog report (per-run"
                                 " summaries, downsampled flags; segment"
                                 " stores only)")
    store_info.add_argument("--output", default=None)
    store_info.set_defaults(func=cmd_store_info)

    query = sub.add_parser(
        "query",
        help="predicate-pushdown store query (per-operation latency stats)",
    )
    query.add_argument("database")
    query.add_argument("--run", default=None, help="run id (default: latest)")
    query.add_argument("--since", type=int, default=None, metavar="NS",
                       help="inclusive wall-clock lower bound (ns; record"
                            " anchor is wall_start, else wall_end)")
    query.add_argument("--until", type=int, default=None, metavar="NS",
                       help="inclusive wall-clock upper bound (ns)")
    query.add_argument("--interface", action="append", default=None,
                       help="keep only this interface (repeatable)")
    query.add_argument("--operation", action="append", default=None,
                       help="keep only this operation (repeatable)")
    query.add_argument("--chain-prefix", default=None,
                       help="keep only chains whose uuid starts with this")
    query.add_argument("--last", type=int, default=None, metavar="N",
                       help="cross-run mode: aggregate over the newest N"
                            " runs via the catalog (segment stores only)")
    query.add_argument("--workers", type=int, default=1,
                       help="catalog scan fan-out width (cross-run mode)")
    query.add_argument("--output", default=None)
    query.set_defaults(func=cmd_query)

    def add_run_command(name, func, help_text, extra=None):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("database")
        command.add_argument("--run", default=None, help="run id (default: latest)")
        command.add_argument(
            "--workers", type=int, default=1,
            help="analyzer worker pool size: 1 = serial single-scan,"
                 " N = shard chains over N workers, 0 = one per CPU",
        )
        if extra:
            extra(command)
        command.set_defaults(func=func)
        return command

    add_run_command("summary", cmd_summary, "DSCG summary of a collected run")
    add_run_command(
        "loss", cmd_loss, "canonical loss-accounting JSON for a run",
        lambda c: c.add_argument("--output", default=None),
    )
    add_run_command(
        "latency", cmd_latency, "per-function latency table",
        lambda c: c.add_argument("--limit", type=int, default=20),
    )
    add_run_command(
        "cpu", cmd_cpu, "per-function self-CPU table",
        lambda c: c.add_argument("--limit", type=int, default=20),
    )
    add_run_command(
        "ccsg", cmd_ccsg, "emit the CCSG XML (Figure 6)",
        lambda c: c.add_argument("--output", default=None),
    )
    add_run_command(
        "critical-path", cmd_critical_path, "latency critical paths",
        lambda c: c.add_argument("--top", type=int, default=3),
    )
    def impact_args(command):
        command.add_argument("--function", default=None,
                             help="qualified function (default: rank all)")
        command.add_argument("--scale", type=float, default=0.5)
        command.add_argument("--top", type=int, default=10)

    add_run_command(
        "impact", cmd_impact, "what-if CPU impact estimation", impact_args
    )
    add_run_command(
        "dscg-json", cmd_dscg_json, "export the annotated DSCG as JSON",
        lambda c: c.add_argument("--output", default=None),
    )
    add_run_command(
        "svg", cmd_svg, "hyperbolic DSCG layout as SVG (Figure 5)",
        lambda c: c.add_argument("--output", default=None),
    )
    add_run_command(
        "harness", cmd_harness, "generate a replay harness script",
        lambda c: c.add_argument("--output", default=None),
    )

    def export_trace_args(command):
        command.add_argument("--format", default="chrome",
                             choices=["chrome", "otlp"],
                             help="chrome = Perfetto-loadable trace events;"
                                  " otlp = OTLP-style span JSON")
        command.add_argument("--output", default=None)
        command.add_argument("--pretty", action="store_true",
                             help="indent the JSON output")
        command.add_argument("--incidents", default=None, metavar="FILE",
                             help="incident-report JSON (from `repro incidents"
                                  " --output`); annotates implicated chains")

    add_run_command(
        "export-trace", cmd_export_trace,
        "export a collected run as standard trace JSON", export_trace_args,
    )

    incidents = sub.add_parser(
        "incidents",
        help="streaming spike detection and causal root-cause ranking",
    )
    incidents.add_argument("database", nargs="?", default=None,
                           help="monitoring store to replay (omit with"
                                " --demo-faults)")
    incidents.add_argument("--run", default=None, help="run id (default: latest)")
    incidents.add_argument("--demo-faults", type=int, default=None, metavar="SEED",
                           help="run the seeded three-tier delay scenario"
                                " instead of reading a store")
    incidents.add_argument("--calls", type=int, default=48,
                           help="demo scenario call count")
    incidents.add_argument("--watch", action="store_true",
                           help="print incidents live as they fire")
    incidents.add_argument("--window", type=int, default=64,
                           help="rolling baseline window (completions)")
    incidents.add_argument("--min-samples", type=int, default=8,
                           help="baseline warm-up before alarming")
    incidents.add_argument("--z-threshold", type=float, default=4.0,
                           help="robust z-score spike threshold")
    incidents.add_argument("--persistence", type=int, default=3,
                           help="consecutive anomalies to open an incident")
    incidents.add_argument("--cooldown", type=int, default=8,
                           help="consecutive normals to close an incident")
    incidents.add_argument("--output", default=None)
    incidents.set_defaults(func=cmd_incidents)

    metrics = sub.add_parser(
        "metrics",
        help="run the PPS with framework self-metrics on; print Prometheus text",
    )
    metrics.add_argument("--database", default=None,
                         help="also collect the run into this database file")
    metrics.add_argument("--mode", default="latency",
                         choices=["causality", "latency", "cpu", "semantics", "full"])
    metrics.add_argument("--jobs", type=int, default=3)
    metrics.add_argument("--pages", type=int, default=4)
    metrics.add_argument("--complexity", type=int, default=2)
    metrics.add_argument("--slo-ms", type=float, default=None,
                         help="latency SLO for breach counters, in milliseconds")
    metrics.add_argument("--output", default=None)
    metrics.set_defaults(func=cmd_metrics)

    suite = sub.add_parser(
        "suite",
        help="declarative scenario suites: expand, run, check invariants",
    )
    suite_sub = suite.add_subparsers(dest="suite_command", required=True)

    def suite_common(command):
        command.add_argument("--suite", required=True,
                             help="path to a suite YAML file (see suites/)")
        command.add_argument("--seed", type=int, default=None,
                             help="override the suite file's seed")

    suite_list = suite_sub.add_parser(
        "list", help="print the expanded scenario grid without running it"
    )
    suite_common(suite_list)
    suite_list.set_defaults(func=cmd_suite_list)

    suite_run = suite_sub.add_parser(
        "run", help="run every scenario and emit the SuiteReport JSON"
    )
    suite_common(suite_run)
    suite_run.add_argument("--workers", type=int, default=1,
                           help="worker threads (0 = one per CPU core)")
    suite_run.add_argument("--only", default=None,
                           help="run only scenarios whose id contains this substring")
    suite_run.add_argument("--output", default=None,
                           help="write the report JSON here instead of stdout")
    suite_run.set_defaults(func=cmd_suite_run)

    cluster = sub.add_parser(
        "cluster",
        help="real-socket multi-process deployments (up/run/collect/down,"
             " bit-identity verification)",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    def cluster_state(command):
        command.add_argument("--state", required=True,
                             help="cluster state directory (one directory"
                                  " == one running cluster)")

    cluster_up = cluster_sub.add_parser(
        "up", help="launch worker processes behind a detached service daemon"
    )
    cluster_state(cluster_up)
    cluster_up.add_argument("--workers", type=int, default=2)
    cluster_up.add_argument("--plane", default="identity",
                            choices=["identity", "load"],
                            help="identity = monitored virtual-clock ring;"
                                 " load = unmonitored asyncio load plane")
    cluster_up.add_argument("--timeout", type=float, default=60.0)
    cluster_up.set_defaults(func=cmd_cluster_up)

    cluster_run = cluster_sub.add_parser(
        "run", help="drive monitored calls or one open-loop load step"
    )
    cluster_state(cluster_run)
    cluster_run.add_argument("--calls", type=int, default=8,
                             help="monitored ring calls per worker"
                                  " (identity plane)")
    cluster_run.add_argument("--rate", type=float, default=None,
                             help="open-loop arrival rate per worker"
                                  " (switches to a load step; load plane)")
    cluster_run.add_argument("--arrivals", type=int, default=1000,
                             help="arrivals per worker for the load step")
    cluster_run.add_argument("--seed", type=int, default=2027)
    cluster_run.add_argument("--max-inflight", type=int, default=4096,
                             help="shed arrivals beyond this many outstanding")
    cluster_run.add_argument("--output", default=None)
    cluster_run.set_defaults(func=cmd_cluster_run)

    cluster_collect = cluster_sub.add_parser(
        "collect", help="ship every worker's spool into a store as one run"
    )
    cluster_state(cluster_collect)
    cluster_collect.add_argument("database")
    cluster_collect.add_argument("--run-id", default="cluster")
    cluster_collect.add_argument("--description", default="cluster (CLI)")
    add_store_flag(cluster_collect)
    cluster_collect.set_defaults(func=cmd_cluster_collect)

    cluster_status = cluster_sub.add_parser(
        "status", help="liveness and buffer occupancy of a running cluster"
    )
    cluster_state(cluster_status)
    cluster_status.set_defaults(func=cmd_cluster_status)

    cluster_down = cluster_sub.add_parser(
        "down", help="stop the workers and the service daemon"
    )
    cluster_state(cluster_down)
    cluster_down.add_argument("--drain-into", default=None, metavar="DATABASE",
                              help="SIGTERM-drain final spools into this"
                                   " store before teardown")
    cluster_down.add_argument("--run-id", default="drain")
    add_store_flag(cluster_down)
    cluster_down.set_defaults(func=cmd_cluster_down)

    cluster_identity = cluster_sub.add_parser(
        "identity",
        help="verify cluster-vs-single-process DSCG/CCSG bit-identity",
    )
    cluster_identity.add_argument("--workers", type=int, default=2)
    cluster_identity.add_argument("--calls", type=int, default=4)
    cluster_identity.add_argument("--output-cluster", default=None,
                                  help="write the cluster pass's canonical"
                                       " JSON document here (CI diffs it)")
    cluster_identity.add_argument("--output-single", default=None,
                                  help="write the single-process pass's"
                                       " document here")
    cluster_identity.set_defaults(func=cmd_cluster_identity)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
