"""Log collection into the relational monitoring database."""

from repro.collector.collector import LogCollector, collect_run
from repro.collector.database import MonitoringDatabase

__all__ = ["LogCollector", "MonitoringDatabase", "collect_run"]
