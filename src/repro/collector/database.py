"""The monitoring database and the analyzer's two standard queries.

Section 3.1 describes the reconstruction input as two queries:

1. "a query on the overall monitoring data [that] identifies the set of
   unique Function UUIDs ever created" — :meth:`MonitoringDatabase.unique_chain_uuids`;
2. "for each identified UUID, the second query sorts the events associated
   with the invocations sharing the UUID by ascending order" —
   :meth:`MonitoringDatabase.events_for_chain`.

The analyzer's fast path fuses the two into a single indexed scan:
:meth:`MonitoringDatabase.chains_for_run` streams ``(chain_uuid,
records)`` groups out of one ``ORDER BY chain_uuid, event_seq, id``
traversal, so reconstruction never pays one query (and one lock
round-trip) per chain.

Concurrency model: one write connection guarded by a lock; reads on
file-backed databases go through per-thread connections against a WAL
journal, so analyzer workers scan in parallel without contending with
each other or with ingest. ``:memory:`` databases cannot be shared
across connections, so their reads fall back to the (serialized) write
connection.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.core.events import CallKind, Domain, TracingEvent
from repro.core.records import ProbeRecord, RunMetadata
from repro.collector.schema import RECORD_COLUMNS, SCHEMA_STATEMENTS

#: Column order used by every record SELECT; positions are relied on by
#: the tuple-based :func:`_row_to_record` conversion below.
_SELECT_COLUMNS = ", ".join(RECORD_COLUMNS[1:])  # all but run_id

_INSERT_SQL = (
    f"INSERT INTO records ({', '.join(RECORD_COLUMNS)})"
    f" VALUES ({', '.join('?' for _ in RECORD_COLUMNS)})"
)

# Enum round-trips by value lookup are measurably cheaper than the enum
# constructors on the million-record conversion path.
_EVENTS = {event.value: event for event in TracingEvent}
_CALL_KINDS = {kind.value: kind for kind in CallKind}
_DOMAINS = {domain.value: domain for domain in Domain}

#: Rows fetched per lock acquisition / round-trip when streaming.
_FETCH_BATCH = 2048

#: Rows per executemany chunk on the ingest path.
_INSERT_CHUNK = 2000


def _record_row(run_id: str, record: ProbeRecord) -> tuple:
    return (
        run_id,
        record.chain_uuid,
        record.event_seq,
        int(record.event),
        record.interface,
        record.operation,
        record.object_id,
        record.component,
        record.process,
        record.pid,
        record.host,
        record.thread_id,
        record.processor_type,
        record.platform,
        str(record.call_kind),
        int(record.collocated),
        str(record.domain),
        record.wall_start,
        record.wall_end,
        record.cpu_start,
        record.cpu_end,
        record.child_chain_uuid,
        json.dumps(record.semantics) if record.semantics is not None else None,
    )


def _row_to_record(row: tuple) -> ProbeRecord:
    """Tuple-positional row conversion (the hot path of every analysis).

    Arguments are passed positionally in ProbeRecord field order — on a
    23-field dataclass the keyword-passing overhead alone is measurable
    at millions of records.
    """
    return ProbeRecord(
        row[0],  # chain_uuid
        row[1],  # event_seq
        _EVENTS[row[2]],
        row[3],  # interface
        row[4],  # operation
        row[5],  # object_id
        row[6],  # component
        row[7],  # process
        row[8],  # pid
        row[9],  # host
        row[10],  # thread_id
        row[11],  # processor_type
        row[12],  # platform
        _CALL_KINDS[row[13]],
        bool(row[14]),  # collocated
        _DOMAINS[row[15]],
        row[16],  # wall_start
        row[17],  # wall_end
        row[18],  # cpu_start
        row[19],  # cpu_end
        row[20],  # child_chain_uuid
        json.loads(row[21]) if row[21] else None,
    )


class MonitoringDatabase:
    """sqlite-backed store for probe records, keyed by run id."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._is_memory = path == ":memory:"
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        self._commit_depth = 0  # >0 inside bulk_ingest(): defer commits
        self._readers: "threading.local" = threading.local()
        self._reader_conns: list[sqlite3.Connection] = []
        self._closed = False
        with self._lock:
            if not self._is_memory:
                # WAL lets per-thread read connections scan concurrently
                # with each other and with the single writer.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            for statement in SCHEMA_STATEMENTS:
                self._conn.execute(statement)
            self._conn.commit()

    # ------------------------------------------------------------------
    # Read-connection plumbing

    def _reader(self) -> sqlite3.Connection | None:
        """This thread's read connection, or None for ``:memory:``.

        ``:memory:`` databases are private to their connection, so reads
        fall back to the locked write connection (serialized).
        """
        if self._is_memory or self._closed:
            return None
        conn = getattr(self._readers, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, check_same_thread=False)
            conn.execute("PRAGMA query_only=ON")
            self._readers.conn = conn
            with self._lock:
                self._reader_conns.append(conn)
        return conn

    def _fetchall(self, sql: str, params: tuple = ()) -> list[tuple]:
        """One read query, lock-free on file-backed databases."""
        reader = self._reader()
        if reader is not None:
            return reader.execute(sql, params).fetchall()
        with self._lock:
            return self._conn.execute(sql, params).fetchall()

    def _stream(self, sql: str, params: tuple = ()) -> Iterator[list[tuple]]:
        """Stream row batches; the lock is only held per fetchmany call."""
        reader = self._reader()
        if reader is not None:
            cursor = reader.execute(sql, params)
            while True:
                rows = cursor.fetchmany(_FETCH_BATCH)
                if not rows:
                    return
                yield rows
        else:
            with self._lock:
                cursor = self._conn.execute(sql, params)
                rows = cursor.fetchmany(_FETCH_BATCH)
            while rows:
                yield rows
                with self._lock:
                    rows = cursor.fetchmany(_FETCH_BATCH)

    # ------------------------------------------------------------------
    # Ingest

    def create_run(self, meta: RunMetadata) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO runs (run_id, description, monitor_mode, extra)"
                " VALUES (?, ?, ?, ?)",
                (meta.run_id, meta.description, meta.monitor_mode, json.dumps(meta.extra)),
            )
            self._maybe_commit()

    def insert_records(
        self, run_id: str, records: Iterable[ProbeRecord], chunk_size: int = _INSERT_CHUNK
    ) -> int:
        """Chunked ``executemany`` ingest; one commit (unless deferred).

        Chunking keeps peak memory flat on million-record drains while
        still amortizing the per-statement overhead.
        """
        total = 0
        chunk: list[tuple] = []
        with self._lock:
            for record in records:
                chunk.append(_record_row(run_id, record))
                if len(chunk) >= chunk_size:
                    self._conn.executemany(_INSERT_SQL, chunk)
                    total += len(chunk)
                    chunk.clear()
            if chunk:
                self._conn.executemany(_INSERT_SQL, chunk)
                total += len(chunk)
            self._maybe_commit()
        return total

    @contextmanager
    def bulk_ingest(self):
        """Defer commits so one collection becomes one transaction."""
        with self._lock:
            self._commit_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._commit_depth -= 1
                if self._commit_depth == 0:
                    self._conn.commit()

    def _maybe_commit(self) -> None:
        # Caller holds self._lock.
        if self._commit_depth == 0:
            self._conn.commit()

    # ------------------------------------------------------------------
    # The two standard analyzer queries

    def unique_chain_uuids(self, run_id: str) -> list[str]:
        """Every Function UUID ever created during the run (query 1)."""
        rows = self._fetchall(
            "SELECT DISTINCT chain_uuid FROM records WHERE run_id = ?"
            " ORDER BY chain_uuid",
            (run_id,),
        )
        return [row[0] for row in rows]

    def events_for_chain(self, run_id: str, chain_uuid: str) -> list[ProbeRecord]:
        """All events of one chain, ascending by event number (query 2)."""
        rows = self._fetchall(
            f"SELECT {_SELECT_COLUMNS} FROM records"
            " WHERE run_id = ? AND chain_uuid = ?"
            " ORDER BY event_seq ASC, id ASC",
            (run_id, chain_uuid),
        )
        return [_row_to_record(row) for row in rows]

    def chains_for_run(
        self,
        run_id: str,
        first_chain: str | None = None,
        last_chain: str | None = None,
    ) -> Iterator[tuple[str, list[ProbeRecord]]]:
        """Stream ``(chain_uuid, sorted records)`` groups in one scan.

        Fuses the paper's two standard queries: a single traversal of the
        ``(run_id, chain_uuid, event_seq)`` index yields every chain's
        events already grouped and sorted, replacing the per-chain N+1
        query loop. ``first_chain``/``last_chain`` (inclusive) restrict
        the scan to a contiguous shard of the sorted chain-uuid space —
        the unit of parallelism in :mod:`repro.analysis.parallel`.

        Chains are yielded in ascending ``chain_uuid`` order, so a
        shard-by-shard concatenation is identical to the full scan.
        """
        sql = f"SELECT {_SELECT_COLUMNS} FROM records WHERE run_id = ?"
        params: list = [run_id]
        if first_chain is not None:
            sql += " AND chain_uuid >= ?"
            params.append(first_chain)
        if last_chain is not None:
            sql += " AND chain_uuid <= ?"
            params.append(last_chain)
        sql += " ORDER BY chain_uuid ASC, event_seq ASC, id ASC"

        current: str | None = None
        group: list[ProbeRecord] = []
        for rows in self._stream(sql, tuple(params)):
            for row in rows:
                chain_uuid = row[0]
                if chain_uuid != current:
                    if current is not None:
                        yield current, group
                    current = chain_uuid
                    group = []
                group.append(_row_to_record(row))
        if current is not None:
            yield current, group

    # ------------------------------------------------------------------
    # Supporting queries

    def record_count(self, run_id: str) -> int:
        rows = self._fetchall(
            "SELECT COUNT(*) FROM records WHERE run_id = ?", (run_id,)
        )
        return rows[0][0]

    def all_records(self, run_id: str) -> Iterator[ProbeRecord]:
        """Stream a run's records in insert order.

        Rows are fetched in batches and converted outside the lock, so a
        million-record run neither materializes in memory nor starves
        concurrent writers for the duration of the export.
        """
        sql = (
            f"SELECT {_SELECT_COLUMNS} FROM records WHERE run_id = ?"
            " ORDER BY id ASC"
        )
        for rows in self._stream(sql, (run_id,)):
            for row in rows:
                yield _row_to_record(row)

    def population_stats(self, run_id: str) -> dict[str, int]:
        """Unique methods/interfaces/components/processes — the Figure-5 stats.

        All eight counters come out of one table scan instead of eight
        sequential full scans under the global lock.
        """
        rows = self._fetchall(
            """
            SELECT
                COUNT(CASE WHEN event = 1 THEN 1 END),
                COUNT(DISTINCT interface || '::' || operation),
                COUNT(DISTINCT interface),
                COUNT(DISTINCT component),
                COUNT(DISTINCT object_id),
                COUNT(DISTINCT process),
                COUNT(DISTINCT process || '/' || thread_id),
                COUNT(DISTINCT chain_uuid)
            FROM records WHERE run_id = ?
            """,
            (run_id,),
        )
        row = rows[0]
        return {
            "calls": row[0],
            "unique_methods": row[1],
            "unique_interfaces": row[2],
            "unique_components": row[3],
            "unique_objects": row[4],
            "processes": row[5],
            "threads": row[6],
            "chains": row[7],
        }

    def runs(self) -> list[RunMetadata]:
        rows = self._fetchall(
            "SELECT run_id, description, monitor_mode, extra FROM runs ORDER BY run_id"
        )
        return [
            RunMetadata(
                run_id=row[0],
                description=row[1],
                monitor_mode=row[2],
                extra=json.loads(row[3]),
            )
            for row in rows
        ]

    def close(self) -> None:
        with self._lock:
            self._closed = True
            readers, self._reader_conns = self._reader_conns, []
            for conn in readers:
                conn.close()
            self._conn.close()
