"""The monitoring database and the analyzer's two standard queries.

Section 3.1 describes the reconstruction input as two queries:

1. "a query on the overall monitoring data [that] identifies the set of
   unique Function UUIDs ever created" — :meth:`MonitoringDatabase.unique_chain_uuids`;
2. "for each identified UUID, the second query sorts the events associated
   with the invocations sharing the UUID by ascending order" —
   :meth:`MonitoringDatabase.events_for_chain`.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Iterable, Iterator

from repro.core.events import CallKind, Domain, TracingEvent
from repro.core.records import ProbeRecord, RunMetadata
from repro.collector.schema import RECORD_COLUMNS, SCHEMA_STATEMENTS


def _record_row(run_id: str, record: ProbeRecord) -> tuple:
    return (
        run_id,
        record.chain_uuid,
        record.event_seq,
        int(record.event),
        record.interface,
        record.operation,
        record.object_id,
        record.component,
        record.process,
        record.pid,
        record.host,
        record.thread_id,
        record.processor_type,
        record.platform,
        str(record.call_kind),
        int(record.collocated),
        str(record.domain),
        record.wall_start,
        record.wall_end,
        record.cpu_start,
        record.cpu_end,
        record.child_chain_uuid,
        json.dumps(record.semantics) if record.semantics is not None else None,
    )


def _row_to_record(row: sqlite3.Row) -> ProbeRecord:
    return ProbeRecord(
        chain_uuid=row["chain_uuid"],
        event_seq=row["event_seq"],
        event=TracingEvent(row["event"]),
        interface=row["interface"],
        operation=row["operation"],
        object_id=row["object_id"],
        component=row["component"],
        process=row["process"],
        pid=row["pid"],
        host=row["host"],
        thread_id=row["thread_id"],
        processor_type=row["processor_type"],
        platform=row["platform"],
        call_kind=CallKind(row["call_kind"]),
        collocated=bool(row["collocated"]),
        domain=Domain(row["domain"]),
        wall_start=row["wall_start"],
        wall_end=row["wall_end"],
        cpu_start=row["cpu_start"],
        cpu_end=row["cpu_end"],
        child_chain_uuid=row["child_chain_uuid"],
        semantics=json.loads(row["semantics"]) if row["semantics"] else None,
    )


class MonitoringDatabase:
    """sqlite-backed store for probe records, keyed by run id."""

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.Lock()
        with self._lock:
            for statement in SCHEMA_STATEMENTS:
                self._conn.execute(statement)
            self._conn.commit()

    # ------------------------------------------------------------------
    # Ingest

    def create_run(self, meta: RunMetadata) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO runs (run_id, description, monitor_mode, extra)"
                " VALUES (?, ?, ?, ?)",
                (meta.run_id, meta.description, meta.monitor_mode, json.dumps(meta.extra)),
            )
            self._conn.commit()

    def insert_records(self, run_id: str, records: Iterable[ProbeRecord]) -> int:
        rows = [_record_row(run_id, record) for record in records]
        placeholders = ", ".join("?" for _ in RECORD_COLUMNS)
        columns = ", ".join(RECORD_COLUMNS)
        with self._lock:
            self._conn.executemany(
                f"INSERT INTO records ({columns}) VALUES ({placeholders})", rows
            )
            self._conn.commit()
        return len(rows)

    # ------------------------------------------------------------------
    # The two standard analyzer queries

    def unique_chain_uuids(self, run_id: str) -> list[str]:
        """Every Function UUID ever created during the run (query 1)."""
        with self._lock:
            cursor = self._conn.execute(
                "SELECT DISTINCT chain_uuid FROM records WHERE run_id = ?"
                " ORDER BY chain_uuid",
                (run_id,),
            )
            return [row["chain_uuid"] for row in cursor.fetchall()]

    def events_for_chain(self, run_id: str, chain_uuid: str) -> list[ProbeRecord]:
        """All events of one chain, ascending by event number (query 2)."""
        with self._lock:
            cursor = self._conn.execute(
                "SELECT * FROM records WHERE run_id = ? AND chain_uuid = ?"
                " ORDER BY event_seq ASC, id ASC",
                (run_id, chain_uuid),
            )
            return [_row_to_record(row) for row in cursor.fetchall()]

    # ------------------------------------------------------------------
    # Supporting queries

    def record_count(self, run_id: str) -> int:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT COUNT(*) AS n FROM records WHERE run_id = ?", (run_id,)
            )
            return cursor.fetchone()["n"]

    def all_records(self, run_id: str) -> Iterator[ProbeRecord]:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT * FROM records WHERE run_id = ? ORDER BY id ASC", (run_id,)
            )
            rows = cursor.fetchall()
        for row in rows:
            yield _row_to_record(row)

    def population_stats(self, run_id: str) -> dict[str, int]:
        """Unique methods/interfaces/components/processes — the Figure-5 stats."""
        queries = {
            "calls": "SELECT COUNT(*) AS n FROM records WHERE run_id = ?"
            " AND event = 1",
            "unique_methods": "SELECT COUNT(DISTINCT interface || '::' || operation) AS n"
            " FROM records WHERE run_id = ?",
            "unique_interfaces": "SELECT COUNT(DISTINCT interface) AS n FROM records"
            " WHERE run_id = ?",
            "unique_components": "SELECT COUNT(DISTINCT component) AS n FROM records"
            " WHERE run_id = ?",
            "unique_objects": "SELECT COUNT(DISTINCT object_id) AS n FROM records"
            " WHERE run_id = ?",
            "processes": "SELECT COUNT(DISTINCT process) AS n FROM records WHERE run_id = ?",
            "threads": "SELECT COUNT(DISTINCT process || '/' || thread_id) AS n"
            " FROM records WHERE run_id = ?",
            "chains": "SELECT COUNT(DISTINCT chain_uuid) AS n FROM records WHERE run_id = ?",
        }
        stats: dict[str, int] = {}
        with self._lock:
            for key, sql in queries.items():
                stats[key] = self._conn.execute(sql, (run_id,)).fetchone()["n"]
        return stats

    def runs(self) -> list[RunMetadata]:
        with self._lock:
            cursor = self._conn.execute("SELECT * FROM runs ORDER BY run_id")
            rows = cursor.fetchall()
        return [
            RunMetadata(
                run_id=row["run_id"],
                description=row["description"],
                monitor_mode=row["monitor_mode"],
                extra=json.loads(row["extra"]),
            )
            for row in rows
        ]

    def close(self) -> None:
        with self._lock:
            self._conn.close()
