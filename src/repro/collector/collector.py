"""Quiescence-time log collection.

"When the application ceases to exist or reaches a quiescent state (e.g.
finishes processing a collection of transactions), the scattered logs are
collected and eventually synthesized into a relational database"
(Section 3). The collector drains each process's local buffer — there is
no runtime coordination between probes and collection.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.collector.database import MonitoringDatabase
from repro.core.records import RunMetadata
from repro.platform.process import SimProcess

_run_counter = itertools.count(1)


class LogCollector:
    """Gathers per-process log buffers into a monitoring database."""

    def __init__(self, database: MonitoringDatabase | None = None):
        self.database = database if database is not None else MonitoringDatabase()

    def collect(
        self,
        processes: Iterable[SimProcess],
        run_id: str | None = None,
        description: str = "",
        drain: bool = True,
    ) -> str:
        """Collect all buffers into one run; returns the run id.

        With ``drain=True`` (default) the process buffers are emptied, so
        consecutive collections partition the records into disjoint runs.
        """
        if run_id is None:
            run_id = f"run-{next(_run_counter)}"
        modes: set[str] = set()
        total = 0
        processes = list(processes)
        for process in processes:
            if process.monitor is not None:
                modes.add(process.monitor.config.mode.value)
        self.database.create_run(
            RunMetadata(
                run_id=run_id,
                description=description,
                monitor_mode=",".join(sorted(modes)),
                extra={"processes": [p.name for p in processes]},
            )
        )
        for process in processes:
            records = process.log_buffer.drain() if drain else process.log_buffer.snapshot()
            total += self.database.insert_records(run_id, records)
        return run_id


def collect_run(
    processes: Iterable[SimProcess],
    database: MonitoringDatabase | None = None,
    run_id: str | None = None,
    description: str = "",
) -> tuple[MonitoringDatabase, str]:
    """One-shot helper: collect ``processes`` into a (new) database."""
    collector = LogCollector(database)
    run = collector.collect(processes, run_id=run_id, description=description)
    return collector.database, run
