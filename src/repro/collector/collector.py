"""Quiescence-time log collection.

"When the application ceases to exist or reaches a quiescent state (e.g.
finishes processing a collection of transactions), the scattered logs are
collected and eventually synthesized into a relational database"
(Section 3). The collector drains each process's local buffer — there is
no runtime coordination between probes and collection.
"""

from __future__ import annotations

import itertools
import time
import uuid
from typing import Iterable

from repro.collector.database import MonitoringDatabase
from repro.core.records import RunMetadata
from repro.platform.process import SimProcess
from repro.telemetry.metrics import NULL_COUNTER, NULL_HISTOGRAM
from repro.telemetry.runtime import metrics_binder

_run_counter = itertools.count(1)

# Framework self-metrics (no-ops until repro.telemetry.enable()).
_TELEMETRY_ON = False
_DRAINS = NULL_COUNTER
_RECORDS = NULL_COUNTER
_DRAIN_NS = NULL_HISTOGRAM


@metrics_binder
def _bind_metrics(registry) -> None:
    global _TELEMETRY_ON, _DRAINS, _RECORDS, _DRAIN_NS
    if registry is None:
        _TELEMETRY_ON = False
        _DRAINS = NULL_COUNTER
        _RECORDS = NULL_COUNTER
        _DRAIN_NS = NULL_HISTOGRAM
        return
    _DRAINS = registry.counter(
        "repro_collector_drains_total",
        "Per-process log-buffer drains performed by collectors.",
    )
    _RECORDS = registry.counter(
        "repro_collector_records_total",
        "Probe records gathered into monitoring databases.",
    )
    _DRAIN_NS = registry.histogram(
        "repro_collector_drain_ns",
        "Wall time to drain and insert one process's buffer, in ns.",
    )
    _TELEMETRY_ON = True


def _generate_run_id() -> str:
    """A run id unique across collector instances and interpreters.

    The module-level counter restarts with every interpreter, so two
    processes (or two test runs appending to one database file) would
    both mint ``run-1``; the random suffix makes collisions vanishingly
    unlikely while keeping ids sortable by local sequence.
    """
    return f"run-{next(_run_counter)}-{uuid.uuid4().hex[:8]}"


class LogCollector:
    """Gathers per-process log buffers into a monitoring database."""

    def __init__(self, database: MonitoringDatabase | None = None):
        self.database = database if database is not None else MonitoringDatabase()

    def collect(
        self,
        processes: Iterable[SimProcess],
        run_id: str | None = None,
        description: str = "",
        drain: bool = True,
    ) -> str:
        """Collect all buffers into one run; returns the run id.

        With ``drain=True`` (default) the process buffers are emptied, so
        consecutive collections partition the records into disjoint runs.
        """
        if run_id is None:
            run_id = _generate_run_id()
        modes: set[str] = set()
        total = 0
        processes = list(processes)
        for process in processes:
            if process.monitor is not None:
                modes.add(process.monitor.config.mode.value)
        # One transaction per collection: the run row and every process's
        # drained buffer commit together, instead of one fsync per drain.
        with self.database.bulk_ingest():
            self.database.create_run(
                RunMetadata(
                    run_id=run_id,
                    description=description,
                    monitor_mode=",".join(sorted(modes)),
                    extra={"processes": [p.name for p in processes]},
                )
            )
            for process in processes:
                if _TELEMETRY_ON:
                    started = time.perf_counter_ns()
                    records = (
                        process.log_buffer.drain() if drain else process.log_buffer.snapshot()
                    )
                    inserted = self.database.insert_records(run_id, records)
                    _DRAIN_NS.observe(time.perf_counter_ns() - started)
                else:
                    records = (
                        process.log_buffer.drain() if drain else process.log_buffer.snapshot()
                    )
                    inserted = self.database.insert_records(run_id, records)
                _DRAINS.inc()
                _RECORDS.inc(inserted)
                total += inserted
        return run_id


def collect_run(
    processes: Iterable[SimProcess],
    database: MonitoringDatabase | None = None,
    run_id: str | None = None,
    description: str = "",
) -> tuple[MonitoringDatabase, str]:
    """One-shot helper: collect ``processes`` into a (new) database."""
    collector = LogCollector(database)
    run = collector.collect(processes, run_id=run_id, description=description)
    return collector.database, run
