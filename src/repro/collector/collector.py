"""Quiescence-time log collection.

"When the application ceases to exist or reaches a quiescent state (e.g.
finishes processing a collection of transactions), the scattered logs are
collected and eventually synthesized into a relational database"
(Section 3). The collector drains each process's local buffer — there is
no runtime coordination between probes and collection.
"""

from __future__ import annotations

import itertools
import time
import uuid
from typing import TYPE_CHECKING, Iterable

from repro.collector.database import MonitoringDatabase
from repro.core.records import SCHEMA_VERSION, RunMetadata
from repro.errors import TransientCollectorError
from repro.platform.process import SimProcess
from repro.telemetry.metrics import NULL_COUNTER, NULL_HISTOGRAM
from repro.telemetry.runtime import metrics_binder

if TYPE_CHECKING:
    from repro.store.backend import StorageBackend

_run_counter = itertools.count(1)

# Framework self-metrics (no-ops until repro.telemetry.enable()).
_TELEMETRY_ON = False
_DRAINS = NULL_COUNTER
_RECORDS = NULL_COUNTER
_DRAIN_NS = NULL_HISTOGRAM
_RETRIES = NULL_COUNTER
_FAILED_DRAINS = NULL_COUNTER
_LOST_RECORDS = NULL_COUNTER
_PROBE_DROPS = NULL_COUNTER


@metrics_binder
def _bind_metrics(registry) -> None:
    global _TELEMETRY_ON, _DRAINS, _RECORDS, _DRAIN_NS
    global _RETRIES, _FAILED_DRAINS, _LOST_RECORDS, _PROBE_DROPS
    if registry is None:
        _TELEMETRY_ON = False
        _DRAINS = NULL_COUNTER
        _RECORDS = NULL_COUNTER
        _DRAIN_NS = NULL_HISTOGRAM
        _RETRIES = NULL_COUNTER
        _FAILED_DRAINS = NULL_COUNTER
        _LOST_RECORDS = NULL_COUNTER
        _PROBE_DROPS = NULL_COUNTER
        return
    _DRAINS = registry.counter(
        "repro_collector_drains_total",
        "Per-process log-buffer drains performed by collectors.",
    )
    _RECORDS = registry.counter(
        "repro_collector_records_total",
        "Probe records gathered into monitoring databases.",
    )
    _DRAIN_NS = registry.histogram(
        "repro_collector_drain_ns",
        "Wall time to drain and insert one process's buffer, in ns.",
    )
    _RETRIES = registry.counter(
        "repro_collector_drain_retries_total",
        "Drain attempts repeated after a transient delivery failure.",
    )
    _FAILED_DRAINS = registry.counter(
        "repro_collector_failed_drains_total",
        "Process drains abandoned after exhausting every retry.",
    )
    _LOST_RECORDS = registry.counter(
        "repro_collector_lost_records_total",
        "Probe records lost on the probe->collector delivery path.",
    )
    _PROBE_DROPS = registry.counter(
        "repro_collector_probe_dropped_records_total",
        "Probe records dropped at the source by bounded log buffers.",
    )
    _TELEMETRY_ON = True


def _generate_run_id() -> str:
    """A run id unique across collector instances and interpreters.

    The module-level counter restarts with every interpreter, so two
    processes (or two test runs appending to one database file) would
    both mint ``run-1``; the random suffix makes collisions vanishingly
    unlikely while keeping ids sortable by local sequence.
    """
    return f"run-{next(_run_counter)}-{uuid.uuid4().hex[:8]}"


class LogCollector:
    """Gathers per-process log buffers into a monitoring database.

    Collection is resilient: a drain that raises
    :class:`~repro.errors.TransientCollectorError` is retried with
    exponential backoff, and whatever is lost anyway — records dropped
    at the probe by a bounded buffer, records lost in delivery, or whole
    buffers left uncollected after exhausting retries — is accounted in
    the run's metadata (``extra["loss"]``) instead of silently vanishing.

    Any :class:`~repro.store.StorageBackend` works as the sink — the
    SQLite default, or the segment store via ``backend=`` (an explicit
    alias of ``database=`` for call sites that select a backend).
    """

    def __init__(
        self,
        database: "StorageBackend | None" = None,
        retries: int = 3,
        backoff_s: float = 0.05,
        backend: "StorageBackend | None" = None,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if database is not None and backend is not None:
            raise ValueError("pass either database= or backend=, not both")
        if backend is not None:
            database = backend
        self.database = database if database is not None else MonitoringDatabase()
        self.retries = retries
        self.backoff_s = backoff_s

    def _drain_with_retry(self, process: SimProcess, drain: bool) -> tuple[list, int, int]:
        """Drain one buffer, retrying transient failures.

        Returns ``(records, expected, retries_used)``; ``expected`` is the
        buffer occupancy before the successful attempt, so the caller can
        charge ``expected - len(records)`` to in-delivery loss. Raises
        :class:`TransientCollectorError` once retries are exhausted.
        """
        buffer = process.log_buffer
        attempt = 0
        while True:
            expected = len(buffer)
            try:
                records = buffer.drain() if drain else buffer.snapshot()
                return records, expected, attempt
            except TransientCollectorError:
                if attempt >= self.retries:
                    raise
                attempt += 1
                _RETRIES.inc()
                if self.backoff_s > 0:
                    time.sleep(self.backoff_s * (2 ** (attempt - 1)))

    def collect(
        self,
        processes: Iterable[SimProcess],
        run_id: str | None = None,
        description: str = "",
        drain: bool = True,
    ) -> str:
        """Collect all buffers into one run; returns the run id.

        With ``drain=True`` (default) the process buffers are emptied, so
        consecutive collections partition the records into disjoint runs.
        """
        if run_id is None:
            run_id = _generate_run_id()
        modes: set[str] = set()
        processes = list(processes)
        for process in processes:
            if process.monitor is not None:
                modes.add(process.monitor.config.mode.value)

        # Drain first (with retries), then ingest: the database transaction
        # should not stay open across sleeps, and the loss accounting must
        # be final before the run row is written.
        batches: list[tuple[SimProcess, list]] = []
        drain_retries = 0
        failed_drains: list[str] = []
        lost_in_delivery = 0
        uncollected = 0
        dropped_at_probe = 0
        for process in processes:
            started = time.perf_counter_ns() if _TELEMETRY_ON else 0
            try:
                records, expected, retries_used = self._drain_with_retry(process, drain)
            except TransientCollectorError:
                drain_retries += self.retries
                failed_drains.append(process.name)
                uncollected += len(process.log_buffer)
                _FAILED_DRAINS.inc()
                continue
            drain_retries += retries_used
            missing = expected - len(records)
            if missing > 0:
                lost_in_delivery += missing
                _LOST_RECORDS.inc(missing)
            dropped = getattr(process.log_buffer, "dropped", 0)
            if dropped:
                dropped_at_probe += dropped
                _PROBE_DROPS.inc(dropped)
            batches.append((process, records))
            if _TELEMETRY_ON:
                _DRAIN_NS.observe(time.perf_counter_ns() - started)
            _DRAINS.inc()

        loss = {
            "drain_retries": drain_retries,
            "failed_drains": sorted(failed_drains),
            "records_dropped_at_probe": dropped_at_probe,
            "records_lost_in_delivery": lost_in_delivery,
            "records_uncollected": uncollected,
        }
        # One transaction per collection: the run row and every process's
        # drained buffer commit together, instead of one fsync per drain.
        with self.database.bulk_ingest():
            self.database.create_run(
                RunMetadata(
                    run_id=run_id,
                    description=description,
                    monitor_mode=",".join(sorted(modes)),
                    extra={
                        "processes": [p.name for p in processes],
                        "loss": loss,
                        "schema_version": SCHEMA_VERSION,
                    },
                )
            )
            for _process, records in batches:
                inserted = self.database.insert_records(run_id, records)
                _RECORDS.inc(inserted)
        return run_id


def collect_run(
    processes: Iterable[SimProcess],
    database: "StorageBackend | None" = None,
    run_id: str | None = None,
    description: str = "",
) -> "tuple[StorageBackend, str]":
    """One-shot helper: collect ``processes`` into a (new) database."""
    collector = LogCollector(database)
    run = collector.collect(processes, run_id=run_id, description=description)
    return collector.database, run
