"""Per-host sharded collection into a local segment spool.

The paper's Section-3 architecture puts a collector *on each host*: it
drains that host's process-local logs at quiescence into local storage,
and only the sealed result crosses the network to the central analyzer.
:class:`ShardedSpoolCollector` is that per-host shard — a thin
composition of the ordinary :class:`~repro.collector.LogCollector` over
a host-local :class:`~repro.store.SegmentStore` whose output directory
is a temporary spool area, sealed on close and then *shipped* (see
:mod:`repro.cluster.shipping`) rather than analyzed in place.

Compaction is disabled on the shard: the central store re-ingests and
compacts globally, so local merge passes would burn CPU on the monitored
host for nothing (and the shipping protocol wants the drain-order spool
segments, whose arrival ranks the central ingest preserves).
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.collector.collector import LogCollector
from repro.core.records import SCHEMA_VERSION
from repro.platform.process import SimProcess
from repro.store.store import SegmentStore


class ShardedSpoolCollector:
    """Drain local process buffers into a sealed, shippable spool.

    Usage::

        shard = ShardedSpoolCollector(spool_dir)
        shard.collect(processes, run_id="...")
        manifest = shard.seal()       # closes the store; spools now sealed
        # ship manifest + segment files, then discard spool_dir

    One shard instance serves one shipment; reuse the spool directory
    only after the previous shipment is acknowledged.
    """

    def __init__(self, spool_dir: str, retries: int = 3, backoff_s: float = 0.05):
        os.makedirs(spool_dir, exist_ok=True)
        self.spool_dir = spool_dir
        # auto_compact=0: spools seal at collection commit and ship as-is.
        self.store = SegmentStore(spool_dir, auto_compact=0)
        self._collector = LogCollector(
            backend=self.store, retries=retries, backoff_s=backoff_s
        )
        self._sealed = False

    def collect(
        self,
        processes: Iterable[SimProcess],
        run_id: str,
        description: str = "",
    ) -> str:
        """Drain ``processes`` into the local spool under ``run_id``.

        Loss accounting (drain retries, failed drains, probe drops,
        delivery loss, uncollected buffers) lands in the run metadata
        exactly as with a direct central collection — the shipping layer
        forwards it verbatim so end-to-end accounting still balances.
        """
        if self._sealed:
            raise RuntimeError("spool collector is sealed; create a new shard")
        return self._collector.collect(
            processes, run_id=run_id, description=description
        )

    def manifest(self, run_id: str) -> dict:
        """The shipment header fields for ``run_id`` (loss, processes,
        modes, counts) as recorded by the local collection."""
        for meta in self.store.runs():
            if meta.run_id == run_id:
                return {
                    "run_id": run_id,
                    "record_count": self.store.record_count(run_id),
                    "loss": meta.extra.get("loss", {}),
                    "processes": meta.extra.get("processes", []),
                    "monitor_mode": meta.monitor_mode,
                    "schema_version": meta.extra.get(
                        "schema_version", SCHEMA_VERSION
                    ),
                }
        raise KeyError(f"run {run_id!r} not collected into this spool")

    def seal(self) -> None:
        """Close the local store: every spool segment becomes sealed and
        durable, ready for shipping."""
        if not self._sealed:
            self._sealed = True
            self.store.close()
