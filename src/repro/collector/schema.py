"""Relational schema for collected monitoring data.

"The scattered logs are collected and eventually synthesized into a
relational database" (Section 3). We use the standard-library sqlite3;
an in-memory database by default, a file path for persistent runs.

The ``records`` table is generated from the single source of truth for
the 23-field record layout, :data:`repro.core.records.RECORD_SCHEMA`, so
the SQL columns can never drift from the dataclass (or from the binary
segment codec, which derives from the same table).
"""

from __future__ import annotations

from repro.core.records import RECORD_SCHEMA

#: SQL column affinity and nullability for each schema field kind.
_SQL_TYPES = {
    "str": "TEXT NOT NULL",
    "int": "INTEGER NOT NULL",
    "event": "INTEGER NOT NULL",
    "call_kind": "TEXT NOT NULL",
    "bool": "INTEGER NOT NULL",
    "domain": "TEXT NOT NULL",
    "opt_int": "INTEGER",
    "opt_str": "TEXT",
    "json": "TEXT",
}

_RECORD_COLUMN_DDL = ",\n        ".join(
    f"{field.name:16s} {_SQL_TYPES[field.kind]}" for field in RECORD_SCHEMA
)

SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS runs (
        run_id        TEXT PRIMARY KEY,
        description   TEXT NOT NULL DEFAULT '',
        monitor_mode  TEXT NOT NULL DEFAULT '',
        extra         TEXT NOT NULL DEFAULT '{}'
    )
    """,
    f"""
    CREATE TABLE IF NOT EXISTS records (
        id               INTEGER PRIMARY KEY,
        run_id           TEXT NOT NULL REFERENCES runs(run_id),
        {_RECORD_COLUMN_DDL}
    )
    """,
    # Drives the analyzer's fused single-scan reconstruction
    # (MonitoringDatabase.chains_for_run): index entries end with the
    # implicit rowid, so "ORDER BY chain_uuid, event_seq, id" is an
    # in-order index walk with no sort step, and a shard's
    # "chain_uuid BETWEEN lo AND hi" is a contiguous index range.
    """
    CREATE INDEX IF NOT EXISTS idx_records_chain
        ON records (run_id, chain_uuid, event_seq)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_records_function
        ON records (run_id, interface, operation)
    """,
    # Predicate-pushdown parity with the segment store's query engine:
    # single-operation filters (without an interface) and time-window
    # filters each get an index so selective scans don't degrade to a
    # full run scan. IF NOT EXISTS means existing databases pick these
    # up on their next open.
    """
    CREATE INDEX IF NOT EXISTS idx_records_operation
        ON records (run_id, operation)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_records_wall
        ON records (run_id, wall_start)
    """,
)

RECORD_COLUMNS = ("run_id",) + tuple(field.name for field in RECORD_SCHEMA)
