"""Relational schema for collected monitoring data.

"The scattered logs are collected and eventually synthesized into a
relational database" (Section 3). We use the standard-library sqlite3;
an in-memory database by default, a file path for persistent runs.
"""

from __future__ import annotations

SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS runs (
        run_id        TEXT PRIMARY KEY,
        description   TEXT NOT NULL DEFAULT '',
        monitor_mode  TEXT NOT NULL DEFAULT '',
        extra         TEXT NOT NULL DEFAULT '{}'
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS records (
        id               INTEGER PRIMARY KEY,
        run_id           TEXT NOT NULL REFERENCES runs(run_id),
        chain_uuid       TEXT NOT NULL,
        event_seq        INTEGER NOT NULL,
        event            INTEGER NOT NULL,
        interface        TEXT NOT NULL,
        operation        TEXT NOT NULL,
        object_id        TEXT NOT NULL,
        component        TEXT NOT NULL,
        process          TEXT NOT NULL,
        pid              INTEGER NOT NULL,
        host             TEXT NOT NULL,
        thread_id        INTEGER NOT NULL,
        processor_type   TEXT NOT NULL,
        platform         TEXT NOT NULL,
        call_kind        TEXT NOT NULL,
        collocated       INTEGER NOT NULL,
        domain           TEXT NOT NULL,
        wall_start       INTEGER,
        wall_end         INTEGER,
        cpu_start        INTEGER,
        cpu_end          INTEGER,
        child_chain_uuid TEXT,
        semantics        TEXT
    )
    """,
    # Drives the analyzer's fused single-scan reconstruction
    # (MonitoringDatabase.chains_for_run): index entries end with the
    # implicit rowid, so "ORDER BY chain_uuid, event_seq, id" is an
    # in-order index walk with no sort step, and a shard's
    # "chain_uuid BETWEEN lo AND hi" is a contiguous index range.
    """
    CREATE INDEX IF NOT EXISTS idx_records_chain
        ON records (run_id, chain_uuid, event_seq)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_records_function
        ON records (run_id, interface, operation)
    """,
)

RECORD_COLUMNS = (
    "run_id",
    "chain_uuid",
    "event_seq",
    "event",
    "interface",
    "operation",
    "object_id",
    "component",
    "process",
    "pid",
    "host",
    "thread_id",
    "processor_type",
    "platform",
    "call_kind",
    "collocated",
    "domain",
    "wall_start",
    "wall_end",
    "cpu_start",
    "cpu_end",
    "child_chain_uuid",
    "semantics",
)
