"""Core contribution: FTL, tracing events, probes, monitoring runtime."""

from repro.core.events import CallKind, Domain, TracingEvent
from repro.core.ftl import (
    FTL_WIRE_SIZE,
    FunctionTxLog,
    SequentialUuidFactory,
    new_chain,
    random_uuid_factory,
)
from repro.core.monitor import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    install_monitoring,
)
from repro.core.probes import CallContext, ProbeSample
from repro.core.records import ChainLink, OperationInfo, ProbeRecord, RunMetadata

__all__ = [
    "CallContext",
    "CallKind",
    "ChainLink",
    "Domain",
    "FTL_WIRE_SIZE",
    "FunctionTxLog",
    "MonitorConfig",
    "MonitorMode",
    "MonitoringRuntime",
    "OperationInfo",
    "ProbeRecord",
    "ProbeSample",
    "RunMetadata",
    "SequentialUuidFactory",
    "TracingEvent",
    "install_monitoring",
    "new_chain",
    "random_uuid_factory",
]
