"""The per-process monitoring runtime.

This module is the "instrumentation-associated library" of the paper: it
is loaded at monitoring initialization, owns the thread-specific storage
slot that forms the in-process half of the virtual tunnel, and implements
the four probes that the instrumented stubs and skeletons call.

The runtime is deliberately independent of any particular remote
invocation infrastructure — the CORBA ORB, the COM runtime and the bridge
all drive the same four entry points:

- :meth:`MonitoringRuntime.stub_start`  (probe 1)
- :meth:`MonitoringRuntime.skel_start`  (probe 2)
- :meth:`MonitoringRuntime.skel_end`    (probe 3)
- :meth:`MonitoringRuntime.stub_end`    (probe 4)

Monitor modes follow Section 2.1: latency and CPU probes are never active
simultaneously ("to reduce interference"), but causality capture always
happens.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.events import CallKind, TracingEvent
from repro.core.ftl import FunctionTxLog, new_chain, random_uuid_factory
from repro.core.probes import CallContext, ProbeSample
from repro.core.records import OperationInfo, ProbeRecord
from repro.errors import MonitorError
from repro.platform.process import SimProcess
from repro.telemetry.metrics import NULL_COUNTER
from repro.telemetry.runtime import metrics_binder

_FTL_SLOT = "ftl"


def _no_cpu_counter() -> None:
    """Prebound stand-in for hosts without per-thread CPU counters."""
    return None

# Framework self-metrics (no-ops until repro.telemetry.enable()).
_PROBE_RECORDS = dict.fromkeys(TracingEvent, NULL_COUNTER)
_CHAINS_STARTED = NULL_COUNTER


@metrics_binder
def _bind_metrics(registry) -> None:
    global _CHAINS_STARTED
    if registry is None:
        for event in TracingEvent:
            _PROBE_RECORDS[event] = NULL_COUNTER
        _CHAINS_STARTED = NULL_COUNTER
        return
    family = registry.counter(
        "repro_probe_records_total",
        "Probe records written to process-local log buffers, by probe.",
        labels=("probe",),
    )
    for event in TracingEvent:
        _PROBE_RECORDS[event] = family.labels(event.name.lower())
    _CHAINS_STARTED = registry.counter(
        "repro_chains_started_total",
        "Causal chains started (fresh Function UUIDs minted at root calls).",
    )


class MonitorMode(enum.Enum):
    """Which behaviour aspect the probes sample this run.

    ``CAUSALITY`` records events only; ``LATENCY`` adds wall-clock
    readings; ``CPU`` adds per-thread CPU readings; ``SEMANTICS`` adds
    application semantics (parameters/exceptions). ``FULL`` samples
    everything and is provided for convenience — the paper never runs
    latency and CPU probes together, so experiments reproducing the paper
    use one of the first four.
    """

    CAUSALITY = "causality"
    LATENCY = "latency"
    CPU = "cpu"
    SEMANTICS = "semantics"
    FULL = "full"

    @property
    def samples_wall(self) -> bool:
        return self in (MonitorMode.LATENCY, MonitorMode.FULL)

    @property
    def samples_cpu(self) -> bool:
        return self in (MonitorMode.CPU, MonitorMode.FULL)

    @property
    def samples_semantics(self) -> bool:
        return self in (MonitorMode.SEMANTICS, MonitorMode.FULL)


#: Probe-path flag table: (samples_wall, samples_cpu, samples_semantics)
#: per mode, so a probe reads its three gates with one dict lookup
#: instead of three enum property calls.
_MODE_FLAGS = {
    _mode: (_mode.samples_wall, _mode.samples_cpu, _mode.samples_semantics)
    for _mode in MonitorMode
}


@dataclass
class MonitorConfig:
    """Configuration for one process's monitoring runtime."""

    mode: MonitorMode = MonitorMode.CAUSALITY
    enabled: bool = True
    uuid_factory: Callable[[], str] = random_uuid_factory
    extra: dict[str, Any] = field(default_factory=dict)


class MonitoringRuntime:
    """Probe implementation attached to one simulated process."""

    def __init__(self, process: SimProcess, config: MonitorConfig | None = None):
        self.process = process
        self.config = config if config is not None else MonitorConfig()
        process.monitor = self
        # Probe fast path: every record carries the same process/host
        # identity, and every sample reads the same (immutable) clock.
        # Prebinding both cuts attribute-chain walks out of the paper's
        # per-probe overhead term O_F. The monitor *mode* stays dynamic —
        # tests flip it mid-run — so it is re-read on each probe.
        host = process.host
        self._wall_ns = host.clock.wall_ns
        if host.capabilities.supports_thread_cpu:
            self._cpu_ns = host.clock.thread_cpu_ns
        else:
            self._cpu_ns = _no_cpu_counter
        self._process_name = process.name
        self._pid = process.pid
        self._host_name = host.name
        self._processor_type = host.processor_type.value
        self._platform = host.platform_kind.value

    # ------------------------------------------------------------------
    # Clock sampling

    def _sample(self) -> ProbeSample:
        wall, cpu, _ = _MODE_FLAGS[self.config.mode]
        return ProbeSample(
            self._wall_ns() if wall else None,
            self._cpu_ns() if cpu else None,
        )

    # ------------------------------------------------------------------
    # FTL / TSS plumbing

    def current_ftl(self) -> FunctionTxLog | None:
        """The FTL bound to the calling thread, if any."""
        return self.process.tss.get(_FTL_SLOT)

    def _ftl_for_call(self) -> FunctionTxLog:
        """Fetch the thread's FTL, starting a new chain at a root call."""
        ftl = self.process.tss.get(_FTL_SLOT)
        if ftl is None:
            ftl = new_chain(self.config.uuid_factory)
            self.process.tss.set(_FTL_SLOT, ftl)
            _CHAINS_STARTED.inc()
        return ftl

    def bind_ftl(self, ftl: FunctionTxLog) -> None:
        """Bind an FTL to the calling thread (used by channel hooks)."""
        self.process.tss.set(_FTL_SLOT, ftl)

    def unbind_ftl(self) -> FunctionTxLog | None:
        """Detach and return the calling thread's FTL (channel hooks)."""
        return self.process.tss.pop(_FTL_SLOT)

    # ------------------------------------------------------------------
    # Record construction

    def _make_record(
        self,
        op: OperationInfo,
        event: TracingEvent,
        ftl: FunctionTxLog,
        wall: int | None,
        cpu: int | None,
        call_kind: CallKind,
        collocated: bool,
        child_chain_uuid: str | None = None,
        semantics: dict[str, Any] | None = None,
    ) -> ProbeRecord:
        # Positional construction in declared field order: slotted
        # dataclass __init__ with keywords costs measurably more, and
        # this constructor runs four times per monitored invocation.
        record = ProbeRecord(
            ftl.chain_uuid,
            ftl.advance(),
            event,
            op.interface,
            op.operation,
            op.object_id,
            op.component,
            self._process_name,
            self._pid,
            self._host_name,
            threading.get_ident(),
            self._processor_type,
            self._platform,
            call_kind,
            collocated,
            op.domain,
            wall,
            None,
            cpu,
            None,
            child_chain_uuid,
            semantics,
        )
        self.process.log_buffer.append(record)
        _PROBE_RECORDS[event].inc()
        return record

    def _finish(self, record: ProbeRecord) -> None:
        wall, cpu, _ = _MODE_FLAGS[self.config.mode]
        record.wall_end = self._wall_ns() if wall else None
        record.cpu_end = self._cpu_ns() if cpu else None

    # ------------------------------------------------------------------
    # Probe 1: stub start

    def stub_start(
        self,
        op: OperationInfo,
        oneway: bool = False,
        collocated: bool = False,
        semantics: dict[str, Any] | None = None,
    ) -> CallContext | None:
        """Probe 1 — fired in the stub right after the client invokes.

        For synchronous calls the current chain's FTL is advanced and its
        snapshot travels with the request. For oneway calls a *child*
        chain is forked; the parent chain records the link in this probe's
        record ("such a parent/child chain relationship is recorded in the
        stub start probes of the one-way function calls") and the child
        FTL travels with the request instead.
        """
        if not self.config.enabled:
            return None
        samples_wall, samples_cpu, samples_sem = _MODE_FLAGS[self.config.mode]
        wall = self._wall_ns() if samples_wall else None
        cpu = self._cpu_ns() if samples_cpu else None
        ftl = self._ftl_for_call()
        child_ftl: FunctionTxLog | None = None
        child_uuid: str | None = None
        if oneway:
            child_ftl = ftl.fork_child(self.config.uuid_factory)
            child_uuid = child_ftl.chain_uuid
        record = self._make_record(
            op,
            TracingEvent.STUB_START,
            ftl,
            wall,
            cpu,
            CallKind.ONEWAY if oneway else CallKind.SYNC,
            collocated,
            child_chain_uuid=child_uuid,
            semantics=semantics if samples_sem else None,
        )
        carried = child_ftl if oneway else ftl
        ctx = CallContext(
            op=op,
            ftl=ftl,
            call_kind=CallKind.ONEWAY if oneway else CallKind.SYNC,
            collocated=collocated,
            start_record=record,
            child_ftl=child_ftl,
            request_ftl_payload=carried.to_bytes(),
        )
        record.wall_end = self._wall_ns() if samples_wall else None
        record.cpu_end = self._cpu_ns() if samples_cpu else None
        return ctx

    # ------------------------------------------------------------------
    # Probe 4: stub end

    def stub_end(
        self,
        ctx: CallContext | None,
        reply_ftl_payload: bytes | None = None,
        semantics: dict[str, Any] | None = None,
    ) -> None:
        """Probe 4 — fired in the stub when the response is ready to return.

        The FTL is deliberately re-read from thread-specific storage
        rather than from the call context: this is the behaviour that is
        correct under every CORBA threading policy (observations O1/O2)
        but *mingles* causal chains under COM STA nested pumping — the
        hazard Section 2.2 describes and the channel hooks repair.
        """
        if ctx is None or not self.config.enabled:
            return
        samples_wall, samples_cpu, samples_sem = _MODE_FLAGS[self.config.mode]
        wall = self._wall_ns() if samples_wall else None
        cpu = self._cpu_ns() if samples_cpu else None
        ftl = self.process.tss.get(_FTL_SLOT)
        if ftl is None:
            # The thread lost its chain (possible only through misuse of
            # the runtime); fall back to the context's FTL so the record
            # is still attributable.
            ftl = ctx.ftl
            self.process.tss.set(_FTL_SLOT, ftl)
        if reply_ftl_payload is not None:
            returned = FunctionTxLog.from_bytes(reply_ftl_payload)
            # Adopt the event number the callee side advanced to. If the
            # UUIDs disagree the chains were intertwined; the record keeps
            # whatever the thread holds and the analyzer flags it.
            if returned.chain_uuid == ftl.chain_uuid:
                ftl.event_seq_no = returned.event_seq_no
        record = self._make_record(
            ctx.op,
            TracingEvent.STUB_END,
            ftl,
            wall,
            cpu,
            ctx.call_kind,
            ctx.collocated,
            semantics=semantics if samples_sem else None,
        )
        record.wall_end = self._wall_ns() if samples_wall else None
        record.cpu_end = self._cpu_ns() if samples_cpu else None

    # ------------------------------------------------------------------
    # Probe 2: skeleton start

    def skel_start(
        self,
        op: OperationInfo,
        request_ftl_payload: bytes | None,
        oneway: bool = False,
        collocated: bool = False,
        semantics: dict[str, Any] | None = None,
    ) -> CallContext | None:
        """Probe 2 — fired when the invocation request reaches the skeleton.

        Unmarshals the FTL from the request, advances it, stores it into
        thread-specific storage (refreshing any stale FTL a recycled pool
        thread may hold — observation O2), and records the event.

        For collocated calls the caller passes ``request_ftl_payload=None``
        and the skeleton continues with the FTL already bound to the
        (shared) thread.
        """
        if not self.config.enabled:
            return None
        samples_wall, samples_cpu, samples_sem = _MODE_FLAGS[self.config.mode]
        wall = self._wall_ns() if samples_wall else None
        cpu = self._cpu_ns() if samples_cpu else None
        if request_ftl_payload is not None:
            ftl = FunctionTxLog.from_bytes(request_ftl_payload)
            self.process.tss.set(_FTL_SLOT, ftl)
        else:
            ftl = self._ftl_for_call()
        record = self._make_record(
            op,
            TracingEvent.SKEL_START,
            ftl,
            wall,
            cpu,
            CallKind.ONEWAY if oneway else CallKind.SYNC,
            collocated,
            semantics=semantics if samples_sem else None,
        )
        ctx = CallContext(
            op=op,
            ftl=ftl,
            call_kind=CallKind.ONEWAY if oneway else CallKind.SYNC,
            collocated=collocated,
            start_record=record,
        )
        record.wall_end = self._wall_ns() if samples_wall else None
        record.cpu_end = self._cpu_ns() if samples_cpu else None
        return ctx

    # ------------------------------------------------------------------
    # Probe 3: skeleton end

    def skel_end(
        self,
        ctx: CallContext | None,
        semantics: dict[str, Any] | None = None,
    ) -> bytes | None:
        """Probe 3 — fired when the function execution concludes.

        Reads the FTL back from thread-specific storage (children executed
        inside the implementation advanced it there), records the event,
        and returns the updated FTL payload for the reply message (``None``
        for oneway calls, which have no reply).
        """
        if ctx is None or not self.config.enabled:
            return None
        samples_wall, samples_cpu, samples_sem = _MODE_FLAGS[self.config.mode]
        wall = self._wall_ns() if samples_wall else None
        cpu = self._cpu_ns() if samples_cpu else None
        ftl = self.process.tss.get(_FTL_SLOT)
        if ftl is None:
            ftl = ctx.ftl
            self.process.tss.set(_FTL_SLOT, ftl)
        record = self._make_record(
            ctx.op,
            TracingEvent.SKEL_END,
            ftl,
            wall,
            cpu,
            ctx.call_kind,
            ctx.collocated,
            semantics=semantics if samples_sem else None,
        )
        record.wall_end = self._wall_ns() if samples_wall else None
        record.cpu_end = self._cpu_ns() if samples_cpu else None
        if ctx.call_kind is CallKind.ONEWAY:
            return None
        return ftl.to_bytes()

    # ------------------------------------------------------------------
    # Convenience wrappers for collocated (degenerate) probe pairs

    def collocated_call_start(
        self, op: OperationInfo, semantics: dict[str, Any] | None = None
    ) -> tuple[CallContext | None, CallContext | None]:
        """Fire probes 1 and 2 back-to-back for a collocated invocation.

        With collocation optimization the stub locates the servant
        directly, so "both stub start and skeleton start probes are
        triggered before the execution falls into the user-defined
        function implementation" (Section 2.2).
        """
        stub_ctx = self.stub_start(op, collocated=True, semantics=semantics)
        skel_ctx = self.skel_start(op, None, collocated=True)
        return stub_ctx, skel_ctx

    def collocated_call_end(
        self,
        stub_ctx: CallContext | None,
        skel_ctx: CallContext | None,
        semantics: dict[str, Any] | None = None,
    ) -> None:
        """Fire probes 3 and 4 back-to-back at collocated call return."""
        self.skel_end(skel_ctx, semantics=semantics)
        self.stub_end(stub_ctx, None)


def install_monitoring(
    process: SimProcess, config: MonitorConfig | None = None
) -> MonitoringRuntime:
    """Attach a monitoring runtime to a process (idempotent per process)."""
    if process.monitor is not None:
        raise MonitorError(f"process {process.name} already monitored")
    return MonitoringRuntime(process, config)
