"""Probe records: what each probe writes to its process-local log.

A record is self-contained — it carries the FTL snapshot (chain UUID and
event number), the identity of the call (interface, operation, object,
component), the execution locality (process, thread, host, processor
type), and the probe's own start/finish readings of the local wall clock
and/or per-thread CPU counter.

The probe's *own* interval (``wall_start``..``wall_end``) is what the
analyzer sums into the overhead term O_F when compensating end-to-end
latency (paper Section 3.2), so every record keeps both readings even
though only one of them is "the" timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.events import CallKind, Domain, TracingEvent

#: Version of the 23-field record layout (``run_id`` + the 22
#: :class:`ProbeRecord` fields below). Stamped into run metadata by the
#: collector and into every segment-file header so a reader can refuse
#: data written under a different layout instead of mis-decoding it.
SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class RecordField:
    """One field of the persisted record layout.

    ``kind`` drives every codec that persists records — the SQLite
    row converters and the binary segment codec are both derived from
    this table, so the 23-field layout has exactly one source of truth:

    - ``str``        required string
    - ``int``        required integer
    - ``event``      :class:`TracingEvent` (stored as its int value)
    - ``call_kind``  :class:`CallKind` (stored as its str value)
    - ``bool``       stored as 0/1
    - ``domain``     :class:`Domain` (stored as its str value)
    - ``opt_int``    integer or None
    - ``opt_str``    string or None
    - ``json``       JSON-serializable object or None

    ``interned`` marks strings drawn from a small population (chain
    uuids, operation names, host/thread identity): the segment codec
    dictionary-encodes them instead of repeating the bytes per record.
    """

    name: str
    kind: str
    interned: bool = False


#: The persisted :class:`ProbeRecord` layout, in dataclass field order.
#: ``run_id`` (the 23rd field) is context every store carries separately:
#: a SQLite column, a segment-store run directory.
RECORD_SCHEMA: tuple[RecordField, ...] = (
    RecordField("chain_uuid", "str", interned=True),
    RecordField("event_seq", "int"),
    RecordField("event", "event"),
    RecordField("interface", "str", interned=True),
    RecordField("operation", "str", interned=True),
    RecordField("object_id", "str", interned=True),
    RecordField("component", "str", interned=True),
    RecordField("process", "str", interned=True),
    RecordField("pid", "int"),
    RecordField("host", "str", interned=True),
    RecordField("thread_id", "int"),
    RecordField("processor_type", "str", interned=True),
    RecordField("platform", "str", interned=True),
    RecordField("call_kind", "call_kind"),
    RecordField("collocated", "bool"),
    RecordField("domain", "domain"),
    RecordField("wall_start", "opt_int"),
    RecordField("wall_end", "opt_int"),
    RecordField("cpu_start", "opt_int"),
    RecordField("cpu_end", "opt_int"),
    RecordField("child_chain_uuid", "opt_str", interned=True),
    RecordField("semantics", "json"),
)


@dataclass(frozen=True, slots=True)
class OperationInfo:
    """Static identity of one IDL operation on one component object."""

    interface: str
    operation: str
    object_id: str
    component: str
    domain: Domain = Domain.CORBA

    @property
    def qualified_name(self) -> str:
        return f"{self.interface}::{self.operation}"


@dataclass(slots=True)
class ProbeRecord:
    """One tracing event as logged by a probe.

    ``slots=True`` because the monitored system materializes four of
    these per invocation: the slotted layout drops the per-record
    ``__dict__`` (roughly halving footprint) and makes the probe-side
    field stores cheaper, both of which land directly in the paper's
    probe-overhead term O_F.
    """

    chain_uuid: str
    event_seq: int
    event: TracingEvent
    interface: str
    operation: str
    object_id: str
    component: str
    process: str
    pid: int
    host: str
    thread_id: int
    processor_type: str
    platform: str
    call_kind: CallKind = CallKind.SYNC
    collocated: bool = False
    domain: Domain = Domain.CORBA
    # Probe-local readings; None when the active monitor mode does not
    # sample that quantity (latency and CPU probes are never simultaneous).
    wall_start: int | None = None
    wall_end: int | None = None
    cpu_start: int | None = None
    cpu_end: int | None = None
    # Oneway stub-start records link the parent chain to the forked child.
    child_chain_uuid: str | None = None
    # Application-semantics capture (parameters, results, exceptions).
    semantics: dict[str, Any] | None = None

    def finish(self, wall_end: int | None, cpu_end: int | None) -> None:
        """Stamp the probe's completion readings (called by the probe)."""
        self.wall_end = wall_end
        self.cpu_end = cpu_end

    @property
    def function(self) -> str:
        return f"{self.interface}::{self.operation}"

    @property
    def event_label(self) -> str:
        """Table-1-style label such as ``Foo::funcA.stub_start``."""
        return self.event.label(self.function)

    def probe_wall_cost(self) -> int:
        """Wall-clock nanoseconds this probe itself consumed (for O_F)."""
        if self.wall_start is None or self.wall_end is None:
            return 0
        return self.wall_end - self.wall_start

    def probe_cpu_cost(self) -> int:
        """CPU nanoseconds this probe itself consumed on its thread."""
        if self.cpu_start is None or self.cpu_end is None:
            return 0
        return self.cpu_end - self.cpu_start


@dataclass(slots=True)
class ChainLink:
    """Parent/child relationship between two causal chains (oneway fork)."""

    parent_uuid: str
    parent_seq: int
    child_uuid: str
    operation: str = ""


@dataclass
class RunMetadata:
    """Descriptive metadata the collector attaches to a monitoring run."""

    run_id: str
    description: str = ""
    monitor_mode: str = ""
    extra: dict[str, Any] = field(default_factory=dict)


# The schema table and the dataclass must never drift apart: every codec
# below trusts RECORD_SCHEMA's order to be ProbeRecord's field order.
if tuple(f.name for f in RECORD_SCHEMA) != ProbeRecord.__slots__:
    raise AssertionError(
        "RECORD_SCHEMA is out of sync with ProbeRecord: "
        f"{[f.name for f in RECORD_SCHEMA]} != {list(ProbeRecord.__slots__)}"
    )
