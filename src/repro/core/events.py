"""Tracing events and call kinds.

The four tracing events correspond one-to-one with the four probes of
Figure 1: stub start (probe 1), skeleton start (probe 2), skeleton end
(probe 3) and stub end (probe 4). Their chaining patterns uniquely
identify sibling and parent/child call structures (Table 1).
"""

from __future__ import annotations

import enum


class TracingEvent(enum.IntEnum):
    """One of the four probe activations; the value is the probe number."""

    STUB_START = 1
    SKEL_START = 2
    SKEL_END = 3
    STUB_END = 4

    @property
    def is_stub_side(self) -> bool:
        return self in (TracingEvent.STUB_START, TracingEvent.STUB_END)

    @property
    def is_start(self) -> bool:
        return self in (TracingEvent.STUB_START, TracingEvent.SKEL_START)

    def label(self, function: str) -> str:
        """Human-readable ``F.stub_start``-style label, as in Table 1."""
        return f"{function}.{self.name.lower()}"


class CallKind(str, enum.Enum):
    """How the invocation was dispatched."""

    SYNC = "sync"
    ONEWAY = "oneway"

    def __str__(self) -> str:  # keeps records compact
        return self.value


class Domain(str, enum.Enum):
    """Which remote-invocation infrastructure carried the call."""

    CORBA = "corba"
    COM = "com"
    J2EE = "j2ee"
    LOCAL = "local"

    def __str__(self) -> str:
        return self.value
