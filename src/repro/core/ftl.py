"""The Function-Transportable Log (FTL).

The FTL is the paper's central data structure (Figure 3): a pair of

- ``global_function_id`` — the *Function UUID* identifying one causal
  chain, and
- ``event_seq_no`` — a counter incremented at every tracing event
  encountered along the chain.

It is the only datum transported through the virtual tunnel. Crucially it
is **constant size** — probes update it in place and never concatenate log
records onto it, which is what distinguishes it from the Trace-Object
baseline (related work [2], [21]) and lets chains grow without a message
size barrier.

Wire format: 16 bytes of UUID, 8 bytes of signed big-endian sequence
number (the sequence can legitimately be ``-1`` for a freshly forked chain
whose first event has not yet been numbered).
"""

from __future__ import annotations

import struct
import threading
import uuid as _uuid
from dataclasses import dataclass, field

_WIRE = struct.Struct(">16sq")

#: Size in bytes of a marshalled FTL — constant, independent of chain length.
FTL_WIRE_SIZE = _WIRE.size


def random_uuid_factory() -> str:
    """Default Function-UUID source: RFC 4122 random UUIDs as 32-hex strings."""
    return _uuid.uuid4().hex


class SequentialUuidFactory:
    """Deterministic Function-UUID source for tests and seeded experiments.

    Produces ``<prefix><counter>`` padded to 32 hex characters, unique per
    factory instance and thread-safe. Share one instance across every
    simulated process in a run to keep chain ids globally unique.
    """

    def __init__(self, prefix: str = "c0"):
        if len(prefix) > 8 or any(ch not in "0123456789abcdef" for ch in prefix):
            raise ValueError("prefix must be <=8 lowercase hex characters")
        self._prefix = prefix
        self._counter = 0
        self._lock = threading.Lock()

    def __call__(self) -> str:
        with self._lock:
            self._counter += 1
            counter = self._counter
        body = f"{counter:x}"
        pad = 32 - len(self._prefix) - len(body)
        if pad < 0:
            raise OverflowError("uuid counter exhausted the 32-hex space")
        return self._prefix + "0" * pad + body


@dataclass(slots=True)
class FunctionTxLog:
    """One FTL instance, mutated in place as it travels the tunnel.

    ``to_bytes`` runs on every remote probe crossing, so the hex-decoded
    UUID half of the wire image is memoized on first use (the UUID is
    fixed for the instance's lifetime; only the sequence half changes).
    """

    chain_uuid: str
    event_seq_no: int = -1
    #: Memoized ``bytes.fromhex(chain_uuid)``; excluded from equality so
    #: a marshalled/unmarshalled pair still compares equal.
    _raw_uuid: bytes | None = field(default=None, repr=False, compare=False)

    def advance(self) -> int:
        """Consume the next event number and return it.

        Called by every probe: "event numbers are incremented along the
        function chain at each time a tracing event is encountered".
        """
        self.event_seq_no += 1
        return self.event_seq_no

    def fork_child(self, uuid_factory=random_uuid_factory) -> "FunctionTxLog":
        """Create the FTL for a fresh child chain (oneway dispatch).

        The child starts before its first event (``event_seq_no == -1``)
        so that the callee-side skeleton start probe numbers itself 0.
        """
        return FunctionTxLog(chain_uuid=uuid_factory(), event_seq_no=-1)

    def copy(self) -> "FunctionTxLog":
        return FunctionTxLog(self.chain_uuid, self.event_seq_no, self._raw_uuid)

    def to_bytes(self) -> bytes:
        """Marshal to the constant-size wire format."""
        raw = self._raw_uuid
        if raw is None:
            raw = self._raw_uuid = bytes.fromhex(self.chain_uuid)
        return _WIRE.pack(raw, self.event_seq_no)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "FunctionTxLog":
        """Unmarshal from the wire format."""
        if len(payload) != _WIRE.size:
            raise ValueError(f"FTL payload must be {_WIRE.size} bytes, got {len(payload)}")
        raw_uuid, seq = _WIRE.unpack(payload)
        return cls(chain_uuid=raw_uuid.hex(), event_seq_no=seq, _raw_uuid=bytes(raw_uuid))


def new_chain(uuid_factory=random_uuid_factory) -> FunctionTxLog:
    """Start a brand-new causal chain (a root invocation)."""
    return FunctionTxLog(chain_uuid=uuid_factory(), event_seq_no=-1)
