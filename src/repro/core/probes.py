"""Probe primitives shared by the monitoring runtime.

A probe activation has a uniform shape regardless of which of the four
probe points it implements:

1. sample the local wall clock and/or per-thread CPU counter,
2. manipulate the FTL (advance the event number, fork a child chain,
   store to / load from thread-specific storage),
3. append a :class:`~repro.core.records.ProbeRecord` to the process-local
   log buffer,
4. sample the clocks again and stamp the record's completion readings.

Steps 1 and 4 bracket the probe so the analyzer can subtract probe
overhead (the O_F term) from end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import CallKind
from repro.core.ftl import FunctionTxLog
from repro.core.records import OperationInfo, ProbeRecord


@dataclass(slots=True)
class ProbeSample:
    """One paired reading of the local clocks."""

    wall: int | None
    cpu: int | None


@dataclass(slots=True)
class CallContext:
    """State threaded from a start probe to the matching end probe.

    The stub keeps one across the request/reply round trip; the skeleton
    keeps one across the servant up-call.
    """

    op: OperationInfo
    ftl: FunctionTxLog
    call_kind: CallKind
    collocated: bool
    start_record: ProbeRecord
    #: For oneway stubs: the forked child chain's FTL (sent in the request).
    child_ftl: FunctionTxLog | None = None
    #: Wire payload of the FTL to transport with the request, if any.
    request_ftl_payload: bytes | None = None
