"""Table 1 — event chaining patterns and function invocation patterns.

Regenerates both columns of the paper's Table 1 from live instrumented
runs: the sibling program ``main { F(); G(); }`` and the parent/child
program ``F { G(); }  G { H(); }``, each deployed across two simulated
processes. The printed event chains must match the table verbatim.
"""

from repro.analysis import reconstruct_from_records
from repro.workloads import parent_child_scenario, sibling_scenario


def _short(label: str) -> str:
    # "Patterns::Hop::F.stub_start" -> "F.stub_start", as in the paper.
    head, _, event = label.partition(".")
    return f"{head.rsplit('::', 1)[-1]}.{event}"


def test_table1_sibling_pattern(benchmark, reporter):
    scenario = benchmark.pedantic(sibling_scenario, rounds=5, iterations=1)
    try:
        reporter.section("Table 1 (left): Sibling — void main() { F(...); G(...); }")
        for record in scenario.records:
            reporter.line(f"  seq={record.event_seq}  {_short(record.event_label)}")
        labels = [record.event_label for record in scenario.records]
        assert labels == scenario.expected_labels
        dscg = reconstruct_from_records(scenario.records)
        (tree,) = dscg.chains.values()
        assert [n.operation for n in tree.roots] == ["F", "G"]
        reporter.line("  -> reconstructed as two SIBLING invocations")
    finally:
        scenario.shutdown()


def test_table1_parent_child_pattern(benchmark, reporter):
    scenario = benchmark.pedantic(parent_child_scenario, rounds=5, iterations=1)
    try:
        reporter.section("Table 1 (right): Parent/Child — F { G(); }  G { H(); }")
        for record in scenario.records:
            reporter.line(f"  seq={record.event_seq}  {_short(record.event_label)}")
        labels = [record.event_label for record in scenario.records]
        assert labels == scenario.expected_labels
        dscg = reconstruct_from_records(scenario.records)
        (tree,) = dscg.chains.values()
        f = tree.roots[0]
        assert f.children[0].children[0].operation == "H"
        reporter.line("  -> reconstructed as the F > G > H nesting chain")
    finally:
        scenario.shutdown()
