"""Section 2 — monitoring overhead: instrumented vs plain stubs/skeletons.

The paper keeps probes "light-weighted" by updating the constant-size FTL
in place. This microbenchmark measures the cost our instrumentation adds
to one remote invocation: the same IDL compiled with both back-end flags,
the same servant, the same transport, on real clocks.
"""

import time

import pytest

from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.orb import InterfaceRegistry, Orb
from repro.platform import Host, Network, PlatformKind, SimProcess

IDL = "module O { interface Echo { long ping(in long n); }; };"


def build(instrument: bool, mode: MonitorMode, prefix: str):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=instrument, registry=registry)
    network = Network()
    host = Host("h", PlatformKind.HPUX_11)  # real clock
    uuid_factory = SequentialUuidFactory(prefix)
    client = SimProcess("client", host)
    server = SimProcess("server", host)
    if instrument:
        for process in (client, server):
            MonitoringRuntime(process, MonitorConfig(mode=mode,
                                                     uuid_factory=uuid_factory))
    client_orb = Orb(client, network, registry=registry)
    server_orb = Orb(server, network, registry=registry)

    class EchoImpl(compiled.Echo):
        def ping(self, n):
            return n

    ref = server_orb.activate(EchoImpl())
    stub = client_orb.resolve(ref)
    return stub, (client, server)


@pytest.mark.parametrize(
    "instrument,mode,prefix",
    [
        (False, MonitorMode.CAUSALITY, "c1"),
        (True, MonitorMode.CAUSALITY, "c2"),
        (True, MonitorMode.LATENCY, "c3"),
        (True, MonitorMode.CPU, "c4"),
    ],
    ids=["plain", "causality-only", "latency-mode", "cpu-mode"],
)
def test_per_call_overhead(benchmark, reporter, instrument, mode, prefix):
    stub, processes = build(instrument, mode, prefix)
    try:
        stub.ping(0)  # warm up connection
        result = benchmark.pedantic(
            lambda: stub.ping(7), rounds=200, iterations=1, warmup_rounds=20
        )
        assert result == 7
        label = "plain" if not instrument else f"instrumented/{mode.value}"
        reporter.section(f"Per-call cost: {label}")
        reporter.line(f"  mean round trip: {benchmark.stats['mean'] * 1e6:.1f} us")
        reporter.line(f"  median         : {benchmark.stats['median'] * 1e6:.1f} us")
    finally:
        for process in processes:
            process.shutdown()


def test_overhead_summary(reporter, benchmark):
    """Direct A/B: mean instrumented minus mean plain round trip."""
    def measure(instrument, mode, prefix, calls=400):
        stub, processes = build(instrument, mode, prefix)
        try:
            stub.ping(0)
            started = time.perf_counter()
            for _ in range(calls):
                stub.ping(1)
            return (time.perf_counter() - started) / calls
        finally:
            for process in processes:
                process.shutdown()

    plain = benchmark.pedantic(
        measure, args=(False, MonitorMode.CAUSALITY, "c5"), rounds=1, iterations=1
    )
    instrumented = measure(True, MonitorMode.LATENCY, "c6")
    overhead = instrumented - plain
    reporter.section("Instrumentation overhead per remote call")
    reporter.line(f"  plain        : {plain * 1e6:7.1f} us")
    reporter.line(f"  instrumented : {instrumented * 1e6:7.1f} us (latency mode)")
    reporter.line(f"  added cost   : {overhead * 1e6:7.1f} us"
                  f" ({(instrumented / plain - 1) * 100:.0f}% of a null call)")
    # Sanity: instrumentation cannot make calls faster by more than noise.
    assert instrumented > plain * 0.5
