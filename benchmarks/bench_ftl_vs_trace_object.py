"""Section 2 / Section 5 — constant-size FTL vs concatenating Trace Object.

The paper's FTL "is light-weighted since no log concatenation occurs as
the call progresses through the tunnel", whereas the Universal Delegator's
Trace Object "concatenates log info during call progression and
unavoidably introduces the barrier for the call chains that exceed tens
of thousands calls" (Section 5). This benchmark regenerates the growth
curve and locates the barrier.
"""

from repro.baselines import (
    DEFAULT_MESSAGE_CAP_BYTES,
    growth_series,
    max_chain_events,
)
from repro.core.ftl import FTL_WIRE_SIZE

DEPTHS = [1, 10, 100, 1_000, 10_000, 40_000]


def test_carrier_size_growth(benchmark, reporter):
    rows = benchmark.pedantic(growth_series, args=(DEPTHS,), rounds=3, iterations=1)
    reporter.section("Carrier size vs chain length (probe events)")
    reporter.line(f"  {'chain events':>12s} {'trace object':>14s} {'FTL':>8s}")
    for events, trace_bytes, ftl_bytes in rows:
        reporter.line(f"  {events:12,d} {trace_bytes:13,d}B {ftl_bytes:7d}B")
    # FTL flat; trace object superlinear in absolute terms.
    assert all(ftl == FTL_WIRE_SIZE for _, _, ftl in rows)
    assert rows[-1][1] > rows[0][1] * 1_000


def test_trace_object_barrier(benchmark, reporter):
    limit = benchmark.pedantic(
        max_chain_events, args=(DEFAULT_MESSAGE_CAP_BYTES,), rounds=1, iterations=1
    )
    reporter.section("Trace-object chain-length barrier")
    reporter.line(f"  transport cap          : {DEFAULT_MESSAGE_CAP_BYTES:,} bytes")
    reporter.line(f"  chain stalls after     : {limit:,} probe events"
                  f" (~{limit // 4:,} calls)")
    reporter.line(f"  FTL at the same length : {FTL_WIRE_SIZE} bytes (no barrier)")
    # "tens of thousands calls": the barrier must land in that regime.
    assert 10_000 < limit // 4 < 100_000
