"""Invocation data-plane throughput benchmark.

Measures calls/sec and per-probe overhead across the matrix
``{sync_remote, oneway_remote, collocated} x {1, 8, 32 client threads}``
for two data planes, plus an **async** plane ladder — ``sync_remote``
driven by ``{1, 64, 1024, 8192}`` pipelined asyncio tasks over one
event-loop channel, with a threaded-mux comparison cell at 1024 OS
threads and honesty fields recording requested vs observed in-flight
depth. The async plane also runs the ``collocated`` and
``oneway_remote`` kinds at ``{1, 64, 1024}`` tasks, mirroring the
threaded matrix (oneways measure send rate with the same trailing-call
record settle):

- **fast** — the current tree: multiplexed client channels (request
  pipelining over one shared connection), fused CDR marshalling plans,
  zero-copy GIOP decode, batched per-thread probe logging.
- **baseline** — the pre-PR lock-step data plane. Two baselines are
  supported, recorded honestly in the output JSON:

  * ``--baseline-src PATH`` points at a checkout of the pre-PR tree
    (e.g. a ``git worktree`` of the parent commit); the same cells run
    in a subprocess with ``PYTHONPATH`` set to that tree. This is the
    real pre-PR data plane and is what the committed
    ``BENCH_invocation_throughput.json`` uses.
  * without ``--baseline-src`` the baseline runs in-process against the
    current tree with ``channel="per-thread"`` and the slow (per-field)
    marshalling entry points — a *compat* approximation used by the CI
    smoke job, labelled ``"in-tree-compat"`` so nobody mistakes it for
    the real pre-PR numbers.

Probe overhead is computed at 1 client thread (no scheduler noise):
``(ns_per_call_monitored - ns_per_call_unmonitored) / records_per_call``
— i.e. the paper's O_F, amortized per probe record actually written.

Every cell runs in a fresh subprocess so import state, marshal-plan
caches and telemetry rebinding never leak between planes.

Usage::

    PYTHONPATH=src python benchmarks/bench_invocation_throughput.py \
        [--quick] [--check] [--baseline-src /path/to/prepr/src] \
        [--max-overhead-ns N] [--output BENCH_invocation_throughput.json]
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import platform
import subprocess
import sys
import threading
import time

KINDS = ("sync_remote", "oneway_remote", "collocated")
THREADS = (1, 8, 32)
#: Concurrency ladder for the asyncio plane: one driver *task* per
#: in-flight call, all pipelined on one event-loop channel. The threaded
#: mux comparison point runs the same sync_remote workload with this many
#: OS threads instead.
ASYNC_INFLIGHT = (1, 64, 1024, 8192)
#: Secondary async ladder for the collocated and oneway kinds — the
#: interesting comparisons live well below the 8192 extreme.
ASYNC_KIND_INFLIGHT = (1, 64, 1024)
ASYNC_KINDS = ("collocated", "oneway_remote")
MUX_COMPARE_THREADS = 1024

IDL = """
module Bench {
  interface Svc {
    long ping(in long x);
    oneway void cast(in long x);
  };
};
"""


# ---------------------------------------------------------------------------
# Worker mode: runs inside a subprocess against whatever tree PYTHONPATH
# selects (current tree for the fast plane, a pre-PR checkout for the
# real baseline). Uses only API that exists in both trees and
# feature-detects the rest.
# ---------------------------------------------------------------------------


def _measure_cell(kind: str, threads: int, monitored: bool, plane: str,
                  total_calls: int) -> dict:
    from repro.core import MonitorConfig, MonitoringRuntime, MonitorMode
    from repro.idl import compile_idl
    from repro.orb import InterfaceRegistry, Orb, ThreadPool
    from repro.platform import Host, Network, SimProcess

    network = Network()
    host = Host("bench-host")  # real clock: throughput is wall time
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)

    server = SimProcess("bench-server", host)
    client = SimProcess("bench-client", host)
    if monitored:
        MonitoringRuntime(server, MonitorConfig(mode=MonitorMode.LATENCY))
        MonitoringRuntime(client, MonitorConfig(mode=MonitorMode.LATENCY))

    orb_kwargs = {}
    channel_param = "channel" in inspect.signature(Orb.__init__).parameters
    if channel_param:
        orb_kwargs["channel"] = "mux" if plane == "fast" else "per-thread"
    server_orb = Orb(server, network, policy=ThreadPool(size=8),
                     registry=registry, **orb_kwargs)

    class Impl(compiled.Svc):
        def ping(self, x):
            return x + 1

        def cast(self, x):
            pass

    ref = server_orb.activate(Impl())
    if kind == "collocated":
        caller_orb = server_orb
    else:
        caller_orb = Orb(client, network, registry=registry, **orb_kwargs)
    stub = caller_orb.resolve(ref)

    # The compat baseline on the current tree also reverts marshalling to
    # the per-field slow path (the pre-PR entry points, kept for the
    # byte-identity property tests). On a real pre-PR tree these slow
    # variants do not exist and nothing needs patching.
    patched = []
    if plane == "baseline" and channel_param:
        import repro.orb.runtime as _rt

        for name in ("_marshal_args", "_unmarshal_args",
                     "_marshal_result", "_unmarshal_result"):
            slow = getattr(_rt, name + "_slow", None)
            if slow is not None:
                patched.append((name, getattr(_rt, name)))
                setattr(_rt, name, slow)

    per_thread = max(1, total_calls // threads)
    calls = per_thread * threads
    oneway = kind == "oneway_remote"
    barrier = threading.Barrier(threads + 1)

    def work():
        invoke = stub.cast if oneway else stub.ping
        barrier.wait()
        for _ in range(per_thread):
            invoke(7)

    workers = [threading.Thread(target=work, name=f"bench-client-{i}")
               for i in range(threads)]
    for thread in workers:
        thread.start()
    barrier.wait()
    start = time.perf_counter_ns()
    for thread in workers:
        thread.join()
    elapsed_ns = time.perf_counter_ns() - start

    def _records() -> int:
        return len(server.log_buffer.snapshot()) + len(client.log_buffer.snapshot())

    records = 0
    if monitored:
        if oneway:
            # Oneways measure send rate; dispatches may still be queued.
            # One trailing sync call flushes the FIFO pool queue, then we
            # wait for the record count to go quiescent.
            stub_sync = caller_orb.resolve(ref)
            stub_sync.ping(0)
            records = _records()
            while True:
                time.sleep(0.02)
                now = _records()
                if now == records:
                    break
                records = now
            records -= 4  # the flush call's own probe records
        else:
            records = _records()

    try:
        caller_orb.shutdown()
        if caller_orb is not server_orb:
            server_orb.shutdown()
    finally:
        client.shutdown()
        server.shutdown()
        for name, original in patched:
            import repro.orb.runtime as _rt

            setattr(_rt, name, original)

    return {
        "kind": kind,
        "threads": threads,
        "plane": plane,
        "monitored": monitored,
        "calls": calls,
        "elapsed_ns": elapsed_ns,
        "calls_per_sec": round(calls / (elapsed_ns / 1e9), 1),
        "ns_per_call": round(elapsed_ns / calls, 1),
        "probe_records": records,
        "records_per_call": round(records / calls, 2) if monitored else 0.0,
    }


def _measure_async_cell(kind: str, inflight: int, monitored: bool,
                        total_calls: int) -> dict:
    """One asyncio-plane cell: ``inflight`` driver tasks pipelining
    ``kind`` calls over one shared event-loop channel.

    Kinds mirror the threaded matrix: ``sync_remote`` awaits a reply
    per call, ``oneway_remote`` awaits only the send (measuring send
    rate, with a trailing sync call + record-count settle for honest
    probe accounting, exactly like the threaded oneway cell), and
    ``collocated`` resolves the stub on the serving ORB so the call
    never leaves the process.

    Honesty fields: ``requested_inflight`` is the task count we asked
    for; ``effective_inflight`` is the channel's observed high-water mark
    of concurrently pending requests (``AsyncMuxChannel.peak_pending``) —
    if replies drain faster than tasks launch, the two differ and the
    JSON says so (0 for collocated: no channel is involved at all).
    """
    import asyncio

    from repro.core import MonitorConfig, MonitoringRuntime, MonitorMode
    from repro.idl import compile_idl
    from repro.orb import AsyncioDispatch, InterfaceRegistry, Orb
    from repro.platform import Host, Network, SimProcess

    network = Network()
    host = Host("bench-host")  # real clock: throughput is wall time
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry,
                           async_mode=True)

    server = SimProcess("bench-server", host)
    client = SimProcess("bench-client", host)
    if monitored:
        MonitoringRuntime(server, MonitorConfig(mode=MonitorMode.LATENCY))
        MonitoringRuntime(client, MonitorConfig(mode=MonitorMode.LATENCY))

    server_orb = Orb(server, network, policy=AsyncioDispatch(),
                     registry=registry, channel="asyncio")

    class Impl(compiled.Svc):
        async def ping(self, x):
            return x + 1

        async def cast(self, x):
            pass

    ref = server_orb.activate(Impl())
    if kind == "collocated":
        caller_orb = server_orb
    else:
        caller_orb = Orb(client, network, registry=registry, channel="asyncio")
    stub = caller_orb.resolve(ref)

    per_task = max(1, total_calls // inflight)
    calls = per_task * inflight
    oneway = kind == "oneway_remote"

    def _records() -> int:
        return (len(server.log_buffer.snapshot())
                + len(client.log_buffer.snapshot()))

    async def worker():
        invoke = stub.cast if oneway else stub.ping
        for _ in range(per_task):
            await invoke(7)

    async def drive() -> int:
        start = time.perf_counter_ns()
        await asyncio.gather(*(worker() for _ in range(inflight)))
        elapsed = time.perf_counter_ns() - start
        if oneway and monitored:
            # Oneways measure send rate; dispatches may still be queued
            # on the server loop. A trailing sync call orders behind
            # every cast on the shared channel, then the record count is
            # polled to quiescence *inside* the loop (the dispatch tasks
            # die with it otherwise).
            await stub.ping(0)
            settled = -1
            while True:
                await asyncio.sleep(0.02)
                now = _records()
                if now == settled:
                    break
                settled = now
        return elapsed

    elapsed_ns = asyncio.run(drive())
    peak_pending = max(
        (ch.peak_pending for ch in caller_orb._async_channels.values()),
        default=0,
    )

    records = 0
    if monitored:
        records = _records()
        if oneway:
            records -= 4  # the flush call's own probe records

    try:
        caller_orb.shutdown()
        if caller_orb is not server_orb:
            server_orb.shutdown()
    finally:
        client.shutdown()
        server.shutdown()

    return {
        "kind": kind,
        "threads": inflight,
        "plane": "async",
        "monitored": monitored,
        "requested_inflight": inflight,
        "effective_inflight": peak_pending,
        "calls": calls,
        "elapsed_ns": elapsed_ns,
        "calls_per_sec": round(calls / (elapsed_ns / 1e9), 1),
        "ns_per_call": round(elapsed_ns / calls, 1),
        "probe_records": records,
        "records_per_call": round(records / calls, 2) if monitored else 0.0,
    }


def _run_worker(spec_json: str) -> None:
    spec = json.loads(spec_json)
    repeat = spec.get("repeat", 1)
    results = []
    for cell in spec["cells"]:
        # Best-of-N: each run includes full setup/teardown; keeping the
        # fastest run filters scheduler noise out of sub-second cells.
        if cell["plane"] == "async":
            runs = [
                _measure_async_cell(cell.get("kind", "sync_remote"),
                                    cell["inflight"], cell["monitored"],
                                    spec["total_calls"])
                for _ in range(repeat)
            ]
        else:
            runs = [
                _measure_cell(cell["kind"], cell["threads"], cell["monitored"],
                              cell["plane"], spec["total_calls"])
                for _ in range(repeat)
            ]
        best = max(runs, key=lambda r: r["calls_per_sec"])
        best["all_runs_calls_per_sec"] = [r["calls_per_sec"] for r in runs]
        results.append(best)
    print(json.dumps(results))


# ---------------------------------------------------------------------------
# Orchestrator mode.
# ---------------------------------------------------------------------------


def _spawn_worker(cells: list[dict], total_calls: int,
                  pythonpath: str, repeat: int) -> list[dict]:
    env = dict(os.environ)
    env["PYTHONPATH"] = pythonpath
    spec = json.dumps(
        {"cells": cells, "total_calls": total_calls, "repeat": repeat}
    )
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--worker", spec],
        capture_output=True, text=True, env=env, timeout=1200,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench worker failed (PYTHONPATH={pythonpath}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def _cell_key(cell: dict) -> tuple:
    return (cell["kind"], cell["threads"], cell["plane"], cell["monitored"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller call counts (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if a gate fails")
    parser.add_argument("--baseline-src", default=None,
                        help="src/ of a pre-PR checkout for the real baseline")
    parser.add_argument("--baseline-label", default=None,
                        help="label recorded for --baseline-src (e.g. git:<sha>)")
    parser.add_argument("--max-overhead-ns", type=float, default=None,
                        help="fail --check if mean per-probe overhead exceeds this")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail --check if sync_remote@8 speedup is below this")
    parser.add_argument("--min-async-inflight", type=int, default=5000,
                        help="fail --check if the async plane never sustains "
                             "this many concurrent in-flight calls")
    parser.add_argument("--repeat", type=int, default=None,
                        help="best-of-N runs per cell (default 3, 1 with --quick)")
    parser.add_argument("--calls", type=int, default=None,
                        help="total calls per cell (default 3000, 400 with --quick)")
    parser.add_argument("--output", default="BENCH_invocation_throughput.json")
    parser.add_argument("--worker", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker is not None:
        _run_worker(args.worker)
        return 0

    total_calls = args.calls or (400 if args.quick else 3000)
    repeat = args.repeat or (1 if args.quick else 3)
    here = os.path.dirname(os.path.abspath(__file__))
    fast_src = os.path.join(os.path.dirname(here), "src")

    fast_cells = [
        {"kind": kind, "threads": threads, "plane": "fast", "monitored": mon}
        for kind in KINDS for threads in THREADS for mon in (True, False)
    ]
    # The threaded-mux point of comparison for the asyncio plane: same
    # sync_remote workload at event-loop-scale concurrency, one parked OS
    # thread per in-flight call.
    fast_cells.append({
        "kind": "sync_remote", "threads": MUX_COMPARE_THREADS,
        "plane": "fast", "monitored": True,
    })
    async_cells = [
        {"kind": "sync_remote", "threads": n, "inflight": n,
         "plane": "async", "monitored": True}
        for n in ASYNC_INFLIGHT
    ] + [
        {"kind": "sync_remote", "threads": 1, "inflight": 1,
         "plane": "async", "monitored": False},
    ] + [
        {"kind": kind, "threads": n, "inflight": n,
         "plane": "async", "monitored": True}
        for kind in ASYNC_KINDS for n in ASYNC_KIND_INFLIGHT
    ]
    baseline_cells = [
        {"kind": kind, "threads": threads, "plane": "baseline", "monitored": True}
        for kind in KINDS for threads in THREADS
    ] + [
        {"kind": kind, "threads": 1, "plane": "baseline", "monitored": False}
        for kind in KINDS
    ]

    baseline_src = args.baseline_src or fast_src
    baseline_label = (
        args.baseline_label or ("pre-pr-checkout" if args.baseline_src
                                else "in-tree-compat")
    )

    print(f"fast plane: {len(fast_cells)} cells x {total_calls} calls",
          file=sys.stderr)
    fast = _spawn_worker(fast_cells, total_calls, fast_src, repeat)
    print(f"async plane: {len(async_cells)} cells x {total_calls} calls",
          file=sys.stderr)
    async_results = _spawn_worker(async_cells, total_calls, fast_src, repeat)
    print(f"baseline plane ({baseline_label}): {len(baseline_cells)} cells",
          file=sys.stderr)
    baseline = _spawn_worker(baseline_cells, total_calls, baseline_src, repeat)

    by_key = {_cell_key(c): c for c in fast + async_results + baseline}

    speedups: dict[str, dict[str, float]] = {}
    for kind in KINDS:
        speedups[kind] = {}
        for threads in THREADS:
            new = by_key[(kind, threads, "fast", True)]
            old = by_key[(kind, threads, "baseline", True)]
            speedups[kind][str(threads)] = round(
                new["calls_per_sec"] / old["calls_per_sec"], 2
            )

    def _overhead(plane: str, kind: str) -> float | None:
        mon = by_key[(kind, 1, plane, True)]
        unmon = by_key[(kind, 1, plane, False)]
        if not mon["records_per_call"]:
            return None
        return (mon["ns_per_call"] - unmon["ns_per_call"]) / mon["records_per_call"]

    probe_overhead = {
        plane: {kind: (None if _overhead(plane, kind) is None
                       else round(_overhead(plane, kind), 1))
                for kind in KINDS}
        for plane in ("fast", "baseline")
    }
    means = {}
    for plane, per_kind in probe_overhead.items():
        values = [v for v in per_kind.values() if v is not None]
        means[plane] = round(sum(values) / len(values), 1) if values else None

    mux_hi = by_key[("sync_remote", MUX_COMPARE_THREADS, "fast", True)]
    async_summary = {
        "calls_per_sec_by_inflight": {
            str(n): by_key[("sync_remote", n, "async", True)]["calls_per_sec"]
            for n in ASYNC_INFLIGHT
        },
        "effective_inflight": {
            str(n): by_key[("sync_remote", n, "async", True)]["effective_inflight"]
            for n in ASYNC_INFLIGHT
        },
        "max_effective_inflight": max(
            by_key[("sync_remote", n, "async", True)]["effective_inflight"]
            for n in ASYNC_INFLIGHT
        ),
        "threaded_mux_calls_per_sec_at_compare": mux_hi["calls_per_sec"],
        "compare_concurrency": MUX_COMPARE_THREADS,
        "async_vs_threaded_mux_at_compare": round(
            by_key[("sync_remote", MUX_COMPARE_THREADS, "async", True)]
            ["calls_per_sec"] / mux_hi["calls_per_sec"], 2
        ),
        "kind_calls_per_sec_by_inflight": {
            kind: {
                str(n): by_key[(kind, n, "async", True)]["calls_per_sec"]
                for n in ASYNC_KIND_INFLIGHT
            }
            for kind in ASYNC_KINDS
        },
    }

    result = {
        "benchmark": "invocation_throughput",
        "quick": args.quick,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "total_calls_per_cell": total_calls,
        "repeat_best_of": repeat,
        "baseline_source": baseline_label,
        "cells": fast + async_results + baseline,
        "speedup_vs_baseline": speedups,
        "async_plane": async_summary,
        "probe_overhead_ns_per_record": probe_overhead,
        "mean_probe_overhead_ns": means,
        "notes": (
            "speedup_vs_baseline = fast monitored calls/sec over baseline "
            "monitored calls/sec; probe overhead measured at 1 client "
            "thread as (monitored - unmonitored) ns/call divided by probe "
            "records per call. baseline_source=in-tree-compat means the "
            "baseline is the current tree in per-thread lock-step mode "
            "with slow marshalling, not a true pre-PR checkout. async "
            "cells drive N pipelined tasks over one event-loop channel; "
            "requested_inflight is the task count, effective_inflight the "
            "channel's observed peak of concurrently pending requests "
            "(0 for collocated cells: no channel involved). async oneway "
            "cells measure send rate with a trailing sync call and "
            "record-count settle, like the threaded oneway cells."
        ),
    }

    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)
    print(json.dumps({"speedup_vs_baseline": speedups,
                      "mean_probe_overhead_ns": means,
                      "async_plane": async_summary}, indent=2))

    if args.check:
        failures = []
        if args.min_speedup is not None:
            got = speedups["sync_remote"]["8"]
            if got < args.min_speedup:
                failures.append(
                    f"sync_remote@8 speedup {got} < {args.min_speedup}"
                )
        ratio = async_summary["async_vs_threaded_mux_at_compare"]
        if ratio <= 1.0:
            failures.append(
                f"async plane did not beat threaded mux at "
                f"{MUX_COMPARE_THREADS}-way concurrency (ratio {ratio})"
            )
        peak = async_summary["max_effective_inflight"]
        if peak < args.min_async_inflight:
            failures.append(
                f"async peak effective in-flight {peak} "
                f"< {args.min_async_inflight}"
            )
        if args.max_overhead_ns is not None and means["fast"] is not None:
            if means["fast"] > args.max_overhead_ns:
                failures.append(
                    f"mean probe overhead {means['fast']}ns "
                    f"> {args.max_overhead_ns}ns"
                )
        if failures:
            for failure in failures:
                print(f"GATE FAILED: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
