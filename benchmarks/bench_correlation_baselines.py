"""Section 5 — what interceptor-only and depth-1 monitors cannot recover.

OVATION "does not provide global causality capture. As the result, for
each method invocation ... the tool cannot determine how this particular
invocation is related to the rest of method invocations." GPROF-style
profilers keep caller/callee relationships at call-depth 1 within one
thread context. This benchmark runs the PPS, hands the identical probe
data (minus the FTL) to each baseline, and reports the fraction of true
caller/callee edges each approach recovers.
"""

from repro.analysis import reconstruct
from repro.apps.pps import PpsSystem, four_process_deployment
from repro.baselines import compare_correlation, path_loss
from repro.baselines.interceptor_only import (
    cross_entity_edges,
    instance_attribution,
    true_edges,
)
from repro.core import MonitorMode


def _run_pps():
    pps = PpsSystem(four_process_deployment(), mode=MonitorMode.LATENCY,
                    uuid_prefix="4a")
    try:
        pps.run(njobs=3, pages=3, complexity=2)
        database, run_id = pps.collect()
        records = list(database.all_records(run_id))
        dscg = reconstruct(database, run_id)
        return dscg, records
    finally:
        pps.shutdown()


def test_correlation_recovery_rates(benchmark, reporter):
    dscg, records = benchmark.pedantic(_run_pps, rounds=1, iterations=1)
    comparison = compare_correlation(dscg, records)
    truth = true_edges(dscg)
    crossing = cross_entity_edges(dscg)
    loss = path_loss(dscg)

    attributable, total_instances = instance_attribution(dscg)
    instance_rate = attributable / total_instances if total_instances else 0.0

    reporter.section("Sec. 5: causal correlation — ours vs baselines")
    reporter.line(f"  true caller/callee name edges  : {comparison.true_edge_count}")
    reporter.line(f"  edges crossing thread/process  : {len(crossing)}"
                  f" ({len(crossing) / len(truth) * 100:.0f}% of edges)")
    reporter.line(f"  ours (FTL tunnel)              : "
                  f"{comparison.ours_rate * 100:5.1f}% of name edges,"
                  f" 100.0% of instances")
    reporter.line(f"  interceptor-only (OVATION-like):")
    reporter.line(f"    name edges via same-thread nesting : "
                  f"{comparison.interceptor_rate * 100:5.1f}%")
    reporter.line(f"    instance attributions (cross-thread"
                  f" executions unlinkable)             : "
                  f"{instance_rate * 100:5.1f}% ({attributable}/{total_instances})")
    reporter.line(f"  gprof-like depth-1 view        : {loss.depth1_edges} flat edges,"
                  f" {loss.spontaneous_roots} callees orphaned as <spontaneous>")
    reporter.line(f"  distinct call paths (ours)     : {loss.distinct_call_paths}")

    assert comparison.ours_rate == 1.0
    # "the tool cannot determine how this particular invocation is related
    # to the rest of method invocations": in a 4-process deployment most
    # executions happen on threads the parent never touches.
    assert instance_rate < 0.5
    assert loss.spontaneous_roots > 0
