"""Section 2.3 / Section 6 — causality across heterogeneous infrastructures.

Measures the three-tier hybrid application (CORBA gateway → COM pricing
STA → J2EE tax bean): single-UUID propagation, per-domain CPU
attribution, and the per-hop cost of each infrastructure's channel.
"""

from repro.analysis import CpuAnalysis, reconstruct_from_records
from repro.com import ComInterface, ComObject, ComRuntime
from repro.core import (
    Domain,
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.j2ee import Container, Jndi, stateless
from repro.orb import InterfaceRegistry, Orb
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock

IDL = "module HY { interface Gate { long go(in long n); }; };"
IMid = ComInterface("IMid", ("relay",))


def build(prefix="4d"):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    clock = VirtualClock()
    network = Network()
    host = Host("h", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory(prefix)

    def proc(name):
        process = SimProcess(name, host)
        MonitoringRuntime(process, MonitorConfig(mode=MonitorMode.CPU,
                                                 uuid_factory=uuid_factory))
        return process

    driver, web, mid, back = proc("driver"), proc("web"), proc("mid"), proc("back")
    driver_orb = Orb(driver, network, registry=registry)
    web_orb = Orb(web, network, registry=registry)
    mid_com = ComRuntime(mid)
    web_com = ComRuntime(web)
    container = Container(back, "back")
    jndi = Jndi()

    @stateless
    class Tax:
        def compute(self, n):
            clock.consume(300)
            return n + 1

    jndi.bind("tax", container, container.deploy(Tax))

    class Mid(ComObject):
        implements = (IMid,)

        def relay(self, n):
            clock.consume(200)
            return jndi.lookup("tax", mid).compute(n) + 1

    sta = mid_com.create_sta("m")
    mid_identity = mid_com.create_object(Mid, sta)

    class GateImpl(compiled.Gate):
        def go(self, n):
            clock.consume(100)
            return web_com.proxy_for(mid_identity, IMid).relay(n) + 1

    stub = driver_orb.resolve(web_orb.activate(GateImpl()))
    processes = [driver, web, mid, back]
    return stub, processes


def test_hybrid_chain_integrity(benchmark, reporter):
    stub, processes = build()
    try:
        def run_calls(calls=20):
            for index in range(calls):
                assert stub.go(index) == index + 3
            records = []
            for process in processes:
                records.extend(process.log_buffer.drain())
            return records

        records = benchmark.pedantic(run_calls, rounds=1, iterations=1)
        dscg = reconstruct_from_records(records)
        cpu = CpuAnalysis(dscg)

        reporter.section("Sec. 6: one causal chain across CORBA + COM + J2EE")
        stats = dscg.stats()
        reporter.line(f"  calls            : 20 three-hop requests")
        reporter.line(f"  chains           : {stats['chains']}  abnormal:"
                      f" {stats['abnormal_events']}")
        per_domain = {}
        for node in dscg.walk():
            vector = per_domain.setdefault(node.domain, [0, 0])
            vector[0] += 1
            self_cpu = cpu.self_cpu(node)
            if self_cpu:
                vector[1] += self_cpu
        for domain in (Domain.CORBA, Domain.COM, Domain.J2EE):
            count, total = per_domain[domain]
            reporter.line(f"  {domain.value:5s}: {count} invocations,"
                          f" {total / 1e3:.1f} us self CPU")
        assert stats["abnormal_events"] == 0
        assert stats["chains"] == 1  # sequential driver thread: one chain
        assert set(per_domain) == {Domain.CORBA, Domain.COM, Domain.J2EE}
        # per-domain CPU attribution is exact on the virtual clock
        assert per_domain[Domain.CORBA][1] == 20 * 100
        assert per_domain[Domain.COM][1] == 20 * 200
        assert per_domain[Domain.J2EE][1] == 20 * 300
    finally:
        for process in processes:
            process.shutdown()
