"""Section 4 — end-to-end latency accuracy: automatic vs manual measurement.

The paper: "To understand our end-to-end latency result's accuracy due to
overhead on causality information capture, we compared it with manual
measurement. The manual counterpart was carried out by having one probe
for one target function in one system run ... we observed that the
automatic measurement and manual measurement were matched within 60%.
The collocated calls (with optimization turned off) tend to have larger
difference compared with the remote calls."

Setup mirrors the paper: a 4-process deployment on real clocks; automatic
latency comes from an instrumented run, manual from an uninstrumented run
timing the same call sites directly. We assert the *shape*: agreement
within the paper's 60% band, and the collocated (loopback) call showing
worse relative error than the remote calls.
"""

import statistics

from repro.analysis import latency_report, reconstruct
from repro.apps.pps import PpsSystem, four_process_deployment
from repro.core import MonitorMode
from repro.platform import RealClock

#: (function to compare, component, caller process, example argument)
TARGETS = [
    ("PPS::ColorTransform::transform", "ColorTransform", "pps0", (5,)),
    ("PPS::Compressor::compress", "Compressor", "pps0", (5,)),
    ("PPS::FontManager::load_fonts", "FontManager", "pps0", (2,)),
    # JobScheduler -> same process (pps0): a collocated call with the
    # optimization turned OFF, i.e. full loopback marshalling.
    ("PPS::JobScheduler::submit", "JobScheduler", "pps0", None),
]

COST_SCALE = 150_000  # 0.15 ms per work unit: measurable on real clocks
CALLS = 30


def _auto_latencies():
    pps = PpsSystem(
        four_process_deployment(collocation=False),
        mode=MonitorMode.LATENCY,
        clock=RealClock(),
        cost_scale=COST_SCALE,
        uuid_prefix="1a",
    )
    try:
        pps.run(njobs=4, pages=5, complexity=2)
        database, run_id = pps.collect()
        dscg = reconstruct(database, run_id)
        return {name: entry.mean_ns for name, entry in latency_report(dscg).items()}
    finally:
        pps.shutdown()


def _manual_latencies():
    pps = PpsSystem(
        four_process_deployment(collocation=False),
        instrument=False,
        clock=RealClock(),
        cost_scale=COST_SCALE,
        uuid_prefix="1b",
    )
    try:
        results = {}
        for function, component, caller, args in TARGETS:
            if args is None:
                continue  # submit is measured through the pipeline only
            method = function.rsplit("::", 1)[-1]
            samples = pps.manual_latency(caller, component, method, args, calls=CALLS)
            results[function] = statistics.fmean(samples)
        # submit: measure the scheduler end to end manually
        Job = pps.compiled.Job
        stub = pps.orbs["pps0"].resolve(pps.refs["JobScheduler"])
        host = pps.processes["pps0"].host
        samples = []
        for index in range(8):
            start = host.wall_ns()
            stub.submit(Job(id=index, pages=5, complexity=2))
            samples.append(host.wall_ns() - start)
        results["PPS::JobScheduler::submit"] = statistics.fmean(samples)
        return results
    finally:
        pps.shutdown()


def test_latency_accuracy_auto_vs_manual(benchmark, reporter):
    auto = benchmark.pedantic(_auto_latencies, rounds=1, iterations=1)
    manual = _manual_latencies()

    reporter.section("Sec. 4: automatic vs manual end-to-end latency (4 processes)")
    reporter.line(f"  {'function':42s} {'auto(ms)':>9s} {'manual(ms)':>11s} {'diff%':>7s}")
    diffs = {}
    for function, _, _, _ in TARGETS:
        if function not in auto or function not in manual:
            continue
        a, m = auto[function], manual[function]
        diff = abs(a - m) / m * 100 if m else 0.0
        diffs[function] = diff
        kind = "(collocated, opt off)" if "submit" in function else "(remote)"
        reporter.line(
            f"  {function:42s} {a / 1e6:9.3f} {m / 1e6:11.3f} {diff:6.1f}% {kind}"
        )

    measured = [diffs[f] for f, _, _, _ in TARGETS if f in diffs]
    assert measured, "no comparable functions measured"
    # Paper's band: matched within 60%.
    within = sum(1 for d in measured if d <= 60.0)
    reporter.line(f"  within the paper's 60% band: {within}/{len(measured)}")
    assert within >= len(measured) - 1, f"too many outliers: {diffs}"
