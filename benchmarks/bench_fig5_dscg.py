"""Figure 5 — DSCG of the large-scale embedded system.

The paper: "the largest system run ever conducted so far consisted of
about 195,000 calls, with a total of 801 unique methods in 155 unique
interfaces from 176 unique components. With the current Java
implementation, it took the analyzer 28 minutes to compute the DSCG."

This benchmark drives the synthetic stand-in (same population), collects
the run, reconstructs the DSCG and reports the same statistics plus the
hyperbolic layout. The default scale is 20,000 calls so the suite stays
fast; set REPRO_FIG5_CALLS=195000 for the paper's full scale.
"""

import os
import time

from repro.analysis import HyperbolicLayout, reconstruct
from repro.apps.embedded import EmbeddedConfig, EmbeddedSystem

CALLS = int(os.environ.get("REPRO_FIG5_CALLS", "20000"))


def test_fig5_dscg_construction(benchmark, reporter):
    config = EmbeddedConfig()
    system = EmbeddedSystem(config, uuid_prefix="f5")
    try:
        drive_started = time.perf_counter()
        system.run(total_calls=CALLS, roots=16)
        drive_seconds = time.perf_counter() - drive_started
        database, run_id = system.collect()
        population = database.population_stats(run_id)

        dscg = benchmark.pedantic(reconstruct, args=(database, run_id),
                                  rounds=3, iterations=1)
        analyze_seconds = benchmark.stats["mean"]
        stats = dscg.stats()

        reporter.section("Figure 5: DSCG of the commercial-scale embedded system")
        reporter.line(f"  paper population : 195,000 calls / 801 methods / 155"
                      f" interfaces / 176 components / 32 threads / 4 processes")
        reporter.line(f"  calls driven     : {population['calls']:,}"
                      f" (REPRO_FIG5_CALLS={CALLS})")
        reporter.line(f"  unique methods   : {population['unique_methods']}")
        reporter.line(f"  unique interfaces: {population['unique_interfaces']}")
        reporter.line(f"  unique components: {population['unique_components']}")
        reporter.line(f"  processes        : {population['processes']}"
                      f"   dispatch threads: "
                      f"{config.processes * config.pool_threads_per_process}")
        reporter.line(f"  probe records    : {database.record_count(run_id):,}")
        reporter.line(f"  drive time       : {drive_seconds:.1f} s")
        reporter.line(f"  DSCG build time  : {analyze_seconds:.2f} s"
                      f" (paper: 28 min at 195k calls on 2003 hardware)")
        reporter.line(f"  DSCG nodes       : {stats['nodes']:,}  chains:"
                      f" {stats['chains']}  max depth: {stats['max_depth']}")
        reporter.line(f"  abnormal events  : {stats['abnormal_events']}")

        assert stats["nodes"] == CALLS
        assert stats["abnormal_events"] == 0
        assert population["unique_interfaces"] == 155
        assert population["unique_components"] == 176

        layout_started = time.perf_counter()
        layout = HyperbolicLayout().layout_dscg(dscg)
        layout_seconds = time.perf_counter() - layout_started
        placed = sum(1 for _ in layout.walk())
        reporter.line(f"  hyperbolic layout: {placed:,} nodes in {layout_seconds:.2f} s")
    finally:
        system.shutdown()
