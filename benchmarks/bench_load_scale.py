"""Open-loop load-scale benchmark for the multi-process cluster.

Sweeps total offered load over a ladder of arrival rates for several
worker-process counts, each step an **open-loop** Poisson arrival
process (see :mod:`repro.cluster.loadgen`): latency is measured from
the *scheduled* arrival (coordinated-omission corrected), arrivals that
find the in-flight cap exhausted are shed, never queued. Per step the
merged cross-worker result reports p50/p99/p999 and goodput; per worker
count the **saturation knee** is the highest offered rate whose goodput
still tracks it (>= 95% efficiency). The interactive-law arithmetic
``users = goodput * think_time`` converts a sustained goodput into the
modeled concurrent-user population (1 s think time by default) — that
is the "how many users would this deployment carry" number.

Scaling gate (``--check``): the best multi-worker aggregate goodput must
exceed 1.5x the best single-process goodput at equal offered load.
Worker processes only scale if they actually run in parallel, so the
gate is enforced **only when the machine has >= 2 usable cores**; on a
single-core box the JSON records the measured (non-)scaling and a
caveat instead of failing — the numbers are never faked.

Usage::

    PYTHONPATH=src python benchmarks/bench_load_scale.py \
        [--quick] [--check] [--workers 1,2,4] [--rates 500,1000,...] \
        [--duration 3.0] [--output BENCH_load_scale.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.cluster import Cluster, find_knee, modeled_users  # noqa: E402

THINK_S = 1.0
EFFICIENCY = 0.95
SEED = 2027


def _effective_cpus() -> int:
    """Cores this process may actually use (affinity-aware when possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def sweep(workers: int, rates: list[float], duration_s: float,
          max_inflight: int, spool_root: str) -> list[dict]:
    """One worker-count column: every rate step on a fresh cluster."""
    steps: list[dict] = []
    cluster = Cluster(workers, plane="load", spool_root=spool_root)
    cluster.up()
    try:
        knee_input = []
        for total_rate in rates:
            per_worker_rate = total_rate / workers
            arrivals = max(1, int(per_worker_rate * duration_s))
            merged, _per_worker = cluster.run_load(
                rate_per_worker=per_worker_rate,
                arrivals_per_worker=arrivals,
                seed=SEED,
                max_inflight=max_inflight,
            )
            knee_input.append((total_rate, merged))
            step = {"offered_rate_per_s": total_rate}
            step.update(merged.to_json())
            steps.append(step)
            print(
                f"  W={workers} rate={total_rate:>8g}/s -> goodput"
                f" {merged.goodput:>9.1f}/s p50 {step['p50_ms']}ms"
                f" p99 {step['p99_ms']}ms p999 {step['p999_ms']}ms"
                f" shed {merged.shed} errors {merged.errors}",
                file=sys.stderr,
            )
    finally:
        cluster.down()
    knee = find_knee(knee_input, efficiency=EFFICIENCY)
    best_goodput = max((s["goodput_per_s"] for s in steps), default=0.0)
    return [{
        "workers": workers,
        "steps": steps,
        "knee_rate_per_s": knee,
        "best_goodput_per_s": best_goodput,
        "modeled_users_at_best": modeled_users(best_goodput, THINK_S),
    }]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short ladder and steps (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="enforce the multi-worker scaling gate"
                             " (auto-skipped on single-core machines)")
    parser.add_argument("--workers", default=None,
                        help="comma-separated worker counts"
                             " (default 1,2,4; quick 1,3)")
    parser.add_argument("--rates", default=None,
                        help="comma-separated total offered rates per second"
                             " (default 500,1000,2000,4000,8000;"
                             " quick 200,400,800)")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds of arrivals per step"
                             " (default 3.0, quick 1.0)")
    parser.add_argument("--max-inflight", type=int, default=4096)
    parser.add_argument("--min-scaling", type=float, default=1.5,
                        help="--check: required multi/single goodput ratio"
                             " at equal offered load")
    parser.add_argument("--output", default="BENCH_load_scale.json")
    args = parser.parse_args(argv)

    if args.workers:
        worker_counts = [int(w) for w in args.workers.split(",")]
    else:
        worker_counts = [1, 3] if args.quick else [1, 2, 4]
    if args.rates:
        rates = [float(r) for r in args.rates.split(",")]
    else:
        rates = [200.0, 400.0, 800.0] if args.quick else [
            500.0, 1000.0, 2000.0, 4000.0, 8000.0,
        ]
    duration_s = args.duration or (1.0 if args.quick else 3.0)
    cpus = _effective_cpus()

    columns: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-load-scale-") as spool:
        for workers in worker_counts:
            print(f"sweeping {workers} worker(s) x {len(rates)} rate step(s)",
                  file=sys.stderr)
            columns.extend(
                sweep(workers, rates, duration_s, args.max_inflight, spool)
            )

    by_workers = {c["workers"]: c for c in columns}
    single = by_workers.get(1)
    scaling = None
    if single and len(by_workers) > 1:
        # Ratio of best multi-worker goodput to the single-process
        # goodput at the same total offered load, per rate step.
        ratios = {}
        for i, rate in enumerate(rates):
            single_goodput = single["steps"][i]["goodput_per_s"]
            multi_goodput = max(
                column["steps"][i]["goodput_per_s"]
                for column in columns if column["workers"] > 1
            )
            ratios[f"{rate:g}"] = (
                round(multi_goodput / single_goodput, 2)
                if single_goodput > 0 else None
            )
        values = [v for v in ratios.values() if v is not None]
        scaling = {
            "multi_over_single_goodput_by_rate": ratios,
            "best_ratio": max(values) if values else None,
            "single_best_goodput_per_s": single["best_goodput_per_s"],
            "multi_best_goodput_per_s": max(
                c["best_goodput_per_s"] for c in columns if c["workers"] > 1
            ),
        }

    gate_enforced = bool(args.check) and cpus >= 2 and scaling is not None
    caveat = None
    if cpus < 2:
        caveat = (
            f"machine exposes {cpus} usable core(s): worker processes "
            "time-share one CPU, so multi-worker scaling is not "
            "measurable here and the scaling gate is not enforced. "
            "The sweep, knee detection and latency distributions remain "
            "valid; run on a multi-core machine (the CI job does) for "
            "the scaling claim."
        )

    result = {
        "benchmark": "load_scale",
        "quick": args.quick,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "effective_cpus": cpus,
        "open_loop": True,
        "seed": SEED,
        "duration_s_per_step": duration_s,
        "max_inflight": args.max_inflight,
        "think_time_s": THINK_S,
        "knee_efficiency": EFFICIENCY,
        "offered_rates_per_s": rates,
        "columns": columns,
        "scaling": scaling,
        "scaling_gate_enforced": gate_enforced,
        "caveat": caveat,
        "notes": (
            "Open-loop Poisson arrivals; latency measured from scheduled "
            "arrival (coordinated-omission corrected); arrivals beyond "
            "max_inflight outstanding are shed, never queued. knee = "
            "highest offered rate with goodput >= 95% of offered. "
            "modeled_users = goodput * think_time (interactive law). "
            "Percentiles are geometric-bucket upper bounds (<20% error)."
        ),
    }

    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)
    print(json.dumps(
        {
            "knees": {str(c["workers"]): c["knee_rate_per_s"] for c in columns},
            "modeled_users": {
                str(c["workers"]): c["modeled_users_at_best"] for c in columns
            },
            "scaling": scaling,
            "caveat": caveat,
        },
        indent=2,
    ))

    if args.check:
        failures = []
        for column in columns:
            errors = sum(s["errors"] for s in column["steps"])
            if errors:
                failures.append(
                    f"W={column['workers']}: {errors} call error(s)"
                )
            # A core-starved multi-worker column legitimately never
            # tracks offered load; only demand a knee where the machine
            # can actually host the workers in parallel.
            if column["knee_rate_per_s"] is None and (
                column["workers"] == 1 or cpus >= 2
            ):
                failures.append(
                    f"W={column['workers']}: goodput never reached "
                    f"{EFFICIENCY:.0%} of offered at any rate (no knee)"
                )
        if gate_enforced and scaling["best_ratio"] is not None:
            if scaling["best_ratio"] < args.min_scaling:
                failures.append(
                    f"multi-worker goodput only {scaling['best_ratio']}x "
                    f"single at equal offered load (< {args.min_scaling}x)"
                )
        elif args.check and not gate_enforced:
            print(f"scaling gate skipped: {caveat or 'single column'}",
                  file=sys.stderr)
        if failures:
            for failure in failures:
                print(f"GATE FAILED: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
