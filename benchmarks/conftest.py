"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index). Numeric rows are both printed (run with
``pytest benchmarks/ --benchmark-only -s``) and written under
``benchmarks/output/`` so EXPERIMENTS.md can cite stable artifacts.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

# Some benchmarks reuse the test suite's chain simulator (tests.helpers);
# make the repo root importable regardless of how pytest was invoked.
_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


class Reporter:
    """Collects report lines for one benchmark and persists them."""

    def __init__(self, name: str):
        self.name = name
        self.lines: list[str] = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)
        print(text)

    def section(self, title: str) -> None:
        self.line()
        self.line(f"=== {title} ===")

    def flush(self) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{self.name}.txt").write_text("\n".join(self.lines) + "\n")


@pytest.fixture
def reporter(request):
    rep = Reporter(request.node.name.replace("[", "_").replace("]", ""))
    yield rep
    rep.flush()
