"""Section 4 — CPU accounting accuracy and deployment-insensitivity.

Two comparisons from the paper's final experiment:

1. "we first evaluated that the automatic measurement from the monolithic
   single-thread configuration matches the true manual measurement to
   within less than 10%";
2. "Then we compared the measurement result on the above mentioned
   single-processor 4-process configuration with this monolithic
   single-thread configuration ... and obtained good matching (within
   40% difference)".

Both run on real per-thread CPU counters (time.thread_time_ns), with the
PPS burning genuine CPU.
"""

from repro.analysis import CpuAnalysis, reconstruct
from repro.apps.pps import PpsSystem, four_process_deployment, monolithic_deployment
from repro.core import MonitorMode
from repro.platform import RealClock
from repro.workloads.burn import burn_cpu

COST_SCALE = 60_000  # 60 us per work unit
JOBS, PAGES, COMPLEXITY = 3, 3, 2


def _automatic_total(deployment, prefix):
    pps = PpsSystem(
        deployment,
        mode=MonitorMode.CPU,
        clock=RealClock(),
        cost_scale=COST_SCALE,
        uuid_prefix=prefix,
    )
    try:
        pps.run(njobs=JOBS, pages=PAGES, complexity=COMPLEXITY)
        database, run_id = pps.collect()
        dscg = reconstruct(database, run_id)
        return CpuAnalysis(dscg).total_by_processor().total_ns()
    finally:
        pps.shutdown()


def _manual_total():
    """True CPU of the same workload, measured without any monitoring.

    Monolithic, uninstrumented, single thread: the whole pipeline runs on
    the calling thread, so one pair of thread-CPU readings around the run
    is the ground truth the paper's manual measurement represents.
    """
    import time

    pps = PpsSystem(
        monolithic_deployment(),
        instrument=False,
        clock=RealClock(),
        cost_scale=COST_SCALE,
        uuid_prefix="3d",
    )
    try:
        start = time.thread_time_ns()
        pps.run(njobs=JOBS, pages=PAGES, complexity=COMPLEXITY)
        return time.thread_time_ns() - start
    finally:
        pps.shutdown()


def test_cpu_accuracy(benchmark, reporter):
    monolithic_auto = benchmark.pedantic(
        _automatic_total, args=(monolithic_deployment(),), kwargs={"prefix": "3a"},
        rounds=1, iterations=1,
    )
    manual = _manual_total()
    four_process_auto = _automatic_total(four_process_deployment(), prefix="3b")

    mono_vs_manual = abs(monolithic_auto - manual) / manual * 100
    four_vs_mono = abs(four_process_auto - monolithic_auto) / monolithic_auto * 100

    reporter.section("Sec. 4: CPU accounting accuracy")
    reporter.line(f"  manual (uninstrumented, single thread) : {manual / 1e6:9.2f} ms CPU")
    reporter.line(f"  automatic, monolithic single-thread    : {monolithic_auto / 1e6:9.2f} ms CPU")
    reporter.line(f"  automatic, 4-process                   : {four_process_auto / 1e6:9.2f} ms CPU")
    reporter.line(f"  monolithic vs manual difference        : {mono_vs_manual:5.1f}%"
                  f"  (paper: <10%)")
    reporter.line(f"  4-process vs monolithic difference     : {four_vs_mono:5.1f}%"
                  f"  (paper: <40%)")

    assert mono_vs_manual < 10.0, f"monolithic accuracy {mono_vs_manual:.1f}% (paper <10%)"
    assert four_vs_mono < 40.0, f"deployment drift {four_vs_mono:.1f}% (paper <40%)"
