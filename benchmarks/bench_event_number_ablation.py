"""Section 5 ablation — the FTL's event number is load-bearing.

"From Sections 2 and 3, it is clear that without the additional event
number in the FTL, the full causality relationship reconstruction into a
call graph is impossible."

A UUID alone groups records into a chain but provides no order. This
ablation strips the event numbers (records arrive in arbitrary log-
collection order, as they would from unsynchronized per-process buffers)
and measures how much call structure survives reconstruction, compared
with the full FTL.
"""

import random

from repro.analysis import reconstruct_from_records
from repro.core import MonitorMode
from tests.helpers import Call, simulate


def _workload_records():
    def nested(levels, tag):
        if levels == 0:
            return ()
        return (Call(f"I::{tag}{levels}", cpu_ns=10, children=nested(levels - 1, tag)),)

    calls = [
        Call(f"I::root{i}", cpu_ns=10, children=nested(4, chr(ord("a") + i)))
        for i in range(6)
    ]
    sim = simulate(calls, mode=MonitorMode.CAUSALITY, fresh_chain_per_top_call=True)
    return sim.records


def _strip_event_numbers(records, seed=7):
    """The ablated carrier: UUID only. Collection order is arbitrary, so
    we shuffle within each chain and renumber by arrival."""
    rng = random.Random(seed)
    by_chain = {}
    for record in records:
        by_chain.setdefault(record.chain_uuid, []).append(record)
    ablated = []
    for chain_records in by_chain.values():
        shuffled = list(chain_records)
        rng.shuffle(shuffled)
        for arrival, record in enumerate(shuffled):
            clone = type(record)(**{**record.__dict__})
            clone.event_seq = arrival  # order information is gone
            ablated.append(clone)
    return ablated


def test_event_number_ablation(benchmark, reporter):
    records = _workload_records()
    full = reconstruct_from_records(records)
    ablated_records = _strip_event_numbers(records)
    ablated = benchmark.pedantic(
        reconstruct_from_records, args=(ablated_records,), rounds=3, iterations=1
    )

    full_stats = full.stats()
    ablated_stats = ablated.stats()
    reporter.section("Sec. 5 ablation: FTL with vs without the event number")
    reporter.line(f"  probe records            : {len(records)}")
    reporter.line(f"  full FTL   : {full_stats['nodes']} nodes,"
                  f" max depth {full_stats['max_depth']},"
                  f" {full_stats['abnormal_events']} abnormal")
    reporter.line(f"  UUID only  : {ablated_stats['nodes']} nodes,"
                  f" max depth {ablated_stats['max_depth']},"
                  f" {ablated_stats['abnormal_events']} abnormal")
    reporter.line("  -> without event numbers the state machine cannot order the")
    reporter.line("     chain: reconstruction degrades to abnormal-event noise")

    assert full_stats["abnormal_events"] == 0
    assert full_stats["max_depth"] == 5
    # The ablated carrier must visibly fail: either a flood of abnormal
    # transitions or a collapsed/garbled hierarchy.
    assert (
        ablated_stats["abnormal_events"] > 0
        or ablated_stats["max_depth"] != full_stats["max_depth"]
    )
