#!/usr/bin/env python
"""Analyzer scaling benchmark: serial N+1 queries vs. sharded single-scan.

Builds a synthetic monitoring run (>=100k probe records by default — a
realistic many-small-chains shape: one causal chain per transaction, as
the PPS produces) in a file-backed database, then measures DSCG
reconstruction throughput three ways:

1. ``serial_per_chain`` — the seed analyzer's loop: one locked query per
   Function UUID (``unique_chain_uuids`` + ``events_for_chain``).
2. ``serial_scan``      — the fused single-index-scan streaming pipeline
   (``reconstruct(db, run, workers=1)``).
3. ``sharded[N]``       — the worker-pool pipeline at 1/2/4/8 workers
   with per-thread WAL read connections
   (``reconstruct(db, run, workers=N)``).

Results land in ``BENCH_analyzer_scale.json`` so CI can accumulate the
perf trajectory across PRs. Run directly::

    PYTHONPATH=src python benchmarks/bench_analyzer_scale.py [--quick]

The acceptance gate for the sharded analyzer is ``sharded[4] >= 1.25x
serial_per_chain`` (2x when it first landed; the bar moved when the
slotted-record layout sped the seed-replica baseline up along with
everything else); the script exits non-zero with ``--check`` when the
target is missed. (Worker scaling beyond the fused-scan win needs real
cores — single-core CI containers will show sharded ~= serial_scan.)
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import Dscg, reconstruct, reconstruct_chain  # noqa: E402
from repro.collector import MonitoringDatabase  # noqa: E402
from repro.core import (  # noqa: E402
    CallKind,
    Domain,
    ProbeRecord,
    RunMetadata,
    TracingEvent,
)

RUN_ID = "bench-analyzer-scale"


# ----------------------------------------------------------------------
# Synthetic workload: one generator per Table-1 chain shape.

def _record(chain, seq, event, op, t, *, kind=CallKind.SYNC, collocated=False,
            child=None):
    interface, operation = op
    return ProbeRecord(
        chain_uuid=chain,
        event_seq=seq,
        event=event,
        interface=interface,
        operation=operation,
        object_id=f"{interface}.obj",
        component=interface,
        process="bench-proc",
        pid=4242,
        host="bench-host",
        thread_id=1,
        processor_type="PA-RISC",
        platform="HPUX 11",
        call_kind=kind,
        collocated=collocated,
        domain=Domain.CORBA,
        wall_start=t,
        wall_end=t + 5,
        cpu_start=t,
        cpu_end=t + 3,
        child_chain_uuid=child,
    )


def _flat_chain(chain, t):
    """One synchronous remote call: 4 records."""
    op = ("Printer", "print_page")
    return [
        _record(chain, 0, TracingEvent.STUB_START, op, t),
        _record(chain, 1, TracingEvent.SKEL_START, op, t + 10),
        _record(chain, 2, TracingEvent.SKEL_END, op, t + 90),
        _record(chain, 3, TracingEvent.STUB_END, op, t + 100),
    ]


def _nested_chain(chain, t):
    """Root sync call with a remote and a collocated child: 12 records."""
    root, remote, local = ("Spooler", "submit"), ("Render", "raster"), ("Cache", "get")
    return [
        _record(chain, 0, TracingEvent.STUB_START, root, t),
        _record(chain, 1, TracingEvent.SKEL_START, root, t + 10),
        _record(chain, 2, TracingEvent.STUB_START, remote, t + 20),
        _record(chain, 3, TracingEvent.SKEL_START, remote, t + 30),
        _record(chain, 4, TracingEvent.SKEL_END, remote, t + 40),
        _record(chain, 5, TracingEvent.STUB_END, remote, t + 50),
        _record(chain, 6, TracingEvent.STUB_START, local, t + 60, collocated=True),
        _record(chain, 7, TracingEvent.SKEL_START, local, t + 62, collocated=True),
        _record(chain, 8, TracingEvent.SKEL_END, local, t + 68, collocated=True),
        _record(chain, 9, TracingEvent.STUB_END, local, t + 70, collocated=True),
        _record(chain, 10, TracingEvent.SKEL_END, root, t + 80),
        _record(chain, 11, TracingEvent.STUB_END, root, t + 90),
    ]


def _oneway_chains(chain, forked, t):
    """Sync root forking a oneway child chain: 6 + 2 records."""
    root, one = ("Spooler", "submit"), ("Logger", "log")
    parent = [
        _record(chain, 0, TracingEvent.STUB_START, root, t),
        _record(chain, 1, TracingEvent.SKEL_START, root, t + 10),
        _record(chain, 2, TracingEvent.STUB_START, one, t + 20,
                kind=CallKind.ONEWAY, child=forked),
        _record(chain, 3, TracingEvent.STUB_END, one, t + 25, kind=CallKind.ONEWAY),
        _record(chain, 4, TracingEvent.SKEL_END, root, t + 80),
        _record(chain, 5, TracingEvent.STUB_END, root, t + 90),
    ]
    child = [
        _record(forked, 0, TracingEvent.SKEL_START, one, t + 40, kind=CallKind.ONEWAY),
        _record(forked, 1, TracingEvent.SKEL_END, one, t + 60, kind=CallKind.ONEWAY),
    ]
    return parent + child


def generate_records(target_records: int):
    """Mix of chain shapes (70% flat, 20% nested, 10% oneway forks)."""
    counter = itertools.count()
    produced = 0
    while produced < target_records:
        index = next(counter)
        uuid = f"{index:032x}"
        t = index * 1000
        slot = index % 10
        if slot < 7:
            chain = _flat_chain(uuid, t)
        elif slot < 9:
            chain = _nested_chain(uuid, t)
        else:
            chain = _oneway_chains(uuid, f"{index:031x}f", t)
        produced += len(chain)
        yield from chain


# ----------------------------------------------------------------------
# The three measured pipelines.

class SeedAnalyzer:
    """Faithful replica of the pre-sharding analyzer read path.

    The seed issued one query per Function UUID against the single
    global connection under a lock, with ``sqlite3.Row`` rows converted
    through string-keyed access and enum constructors — reproduced here
    verbatim so the benchmark's "serial" row measures what this PR
    replaced, independent of the fast paths now inside
    :class:`MonitoringDatabase`.
    """

    def __init__(self, path: str):
        import sqlite3
        import threading

        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.Lock()

    def close(self):
        self._conn.close()

    @staticmethod
    def _row_to_record(row) -> ProbeRecord:
        return ProbeRecord(
            chain_uuid=row["chain_uuid"],
            event_seq=row["event_seq"],
            event=TracingEvent(row["event"]),
            interface=row["interface"],
            operation=row["operation"],
            object_id=row["object_id"],
            component=row["component"],
            process=row["process"],
            pid=row["pid"],
            host=row["host"],
            thread_id=row["thread_id"],
            processor_type=row["processor_type"],
            platform=row["platform"],
            call_kind=CallKind(row["call_kind"]),
            collocated=bool(row["collocated"]),
            domain=Domain(row["domain"]),
            wall_start=row["wall_start"],
            wall_end=row["wall_end"],
            cpu_start=row["cpu_start"],
            cpu_end=row["cpu_end"],
            child_chain_uuid=row["child_chain_uuid"],
            semantics=json.loads(row["semantics"]) if row["semantics"] else None,
        )

    def unique_chain_uuids(self, run_id: str) -> list[str]:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT DISTINCT chain_uuid FROM records WHERE run_id = ?"
                " ORDER BY chain_uuid",
                (run_id,),
            )
            return [row["chain_uuid"] for row in cursor.fetchall()]

    def events_for_chain(self, run_id: str, chain_uuid: str) -> list[ProbeRecord]:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT * FROM records WHERE run_id = ? AND chain_uuid = ?"
                " ORDER BY event_seq ASC, id ASC",
                (run_id, chain_uuid),
            )
            return [self._row_to_record(row) for row in cursor.fetchall()]

    def reconstruct(self, run_id: str) -> Dscg:
        dscg = Dscg()
        for chain_uuid in self.unique_chain_uuids(run_id):
            records = self.events_for_chain(run_id, chain_uuid)
            dscg.add_chain(reconstruct_chain(chain_uuid, records))
        dscg.link_chains()
        return dscg


def _best_of(repeat, fn, *args, **kwargs):
    best, result = None, None
    for _ in range(repeat):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_benchmark(records: int, workers: list[int], repeat: int,
                  database_path: str, quick: bool) -> dict:
    database = MonitoringDatabase(database_path)
    database.create_run(RunMetadata(run_id=RUN_ID, description="analyzer scale"))
    started = time.perf_counter()
    with database.bulk_ingest():
        inserted = database.insert_records(RUN_ID, generate_records(records))
    ingest_s = time.perf_counter() - started
    chains = len(database.unique_chain_uuids(RUN_ID))
    print(f"ingested {inserted} records / {chains} chains "
          f"in {ingest_s:.2f}s ({inserted / ingest_s:,.0f} rec/s)")

    seed = SeedAnalyzer(database_path)
    serial_s, baseline = _best_of(repeat, seed.reconstruct, RUN_ID)
    seed.close()
    print(f"serial per-chain (seed N+1): {serial_s:.3f}s "
          f"({inserted / serial_s:,.0f} rec/s)")

    scan_s, scan_dscg = _best_of(repeat, reconstruct, database, RUN_ID)
    print(f"serial fused scan          : {scan_s:.3f}s "
          f"({inserted / scan_s:,.0f} rec/s)")
    assert scan_dscg.stats() == baseline.stats(), "fused scan diverged from seed"

    from repro.analysis.parallel import effective_workers

    sharded: dict[str, float] = {}
    requested: dict[str, int] = {}
    effective: dict[str, int] = {}
    for n in workers:
        shard_s, shard_dscg = _best_of(repeat, reconstruct, database, RUN_ID,
                                       workers=n)
        assert shard_dscg.stats() == baseline.stats(), f"sharded x{n} diverged"
        sharded[str(n)] = inserted / shard_s
        requested[str(n)] = n
        effective[str(n)] = effective_workers(n)
        print(f"sharded x{n:<2d} (pool {effective[str(n)]:2d})      : {shard_s:.3f}s "
              f"({inserted / shard_s:,.0f} rec/s)")

    four = str(4) if 4 in workers else str(max(workers))
    speedup4 = sharded[four] / (inserted / serial_s)
    result = {
        "benchmark": "analyzer_scale",
        "quick": quick,
        "records": inserted,
        "chains": chains,
        "cpu_count": os.cpu_count(),
        "ingest_rps": inserted / ingest_s,
        "throughput_rps": {
            "serial_per_chain": inserted / serial_s,
            "serial_scan": inserted / scan_s,
            "sharded": sharded,
        },
        # Pools are clamped to the core count (GIL: extra threads only
        # contend); on a 1-core CI box every sharded row runs the pool=1
        # fused scan and the speedup comes from the single-scan pipeline.
        # Both sides are recorded so a "sharded x8" row on a clamped box
        # cannot masquerade as an 8-wide measurement; set
        # REPRO_ANALYZER_WORKERS to lift the clamp and exercise real
        # sharding regardless of core count.
        "requested_workers": requested,
        "effective_workers": effective,
        "analyzer_workers_env": os.environ.get("REPRO_ANALYZER_WORKERS") or None,
        "speedup_vs_serial": {
            "serial_scan": (inserted / scan_s) / (inserted / serial_s),
            f"sharded_{four}": speedup4,
        },
        "meets_speedup_target": speedup4 >= 1.25,
    }
    database.close()
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=100_000,
                        help="synthetic probe records to generate (default 100k)")
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated sharded pool sizes")
    parser.add_argument("--repeat", type=int, default=2,
                        help="repetitions per pipeline (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing: 20k records, best-of-1, workers 1,2,4")
    parser.add_argument("--database", default=None,
                        help="database file to (re)use; default: fresh temp file")
    parser.add_argument("--output", default="BENCH_analyzer_scale.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless sharded@4 >= 2x the seed serial analyzer")
    args = parser.parse_args(argv)

    records = 20_000 if args.quick else args.records
    repeat = 1 if args.quick else args.repeat
    workers = [int(w) for w in ("1,2,4" if args.quick else args.workers).split(",")]

    if args.database:
        result = run_benchmark(records, workers, repeat, args.database, args.quick)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            result = run_benchmark(records, workers, repeat,
                                   os.path.join(tmp, "bench.db"), args.quick)

    with open(args.output, "w") as handle:
        json.dump(result, handle, indent=2)
    print(f"wrote {args.output}")
    speedups = result["speedup_vs_serial"]
    for label, speedup in speedups.items():
        print(f"  {label}: {speedup:.2f}x vs seed serial analyzer")
    if args.check and not result["meets_speedup_target"]:
        print("FAIL: sharded analyzer did not reach 1.25x the seed serial analyzer")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
