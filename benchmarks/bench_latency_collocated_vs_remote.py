"""Section 4 — collocated calls (optimization off) show larger error.

"The collocated calls (with optimization turned off) tend to have larger
difference compared with the remote calls."

The reason is proportionality: a loopback call's true latency is small,
so the fixed causality-capture overhead is a larger fraction of it. We
measure the same cheap operation two ways on real clocks — from its own
process (collocated, optimization off ⇒ loopback marshalling) and from a
remote process over a link with injected latency — and compare each
automatic measurement against its manual counterpart.
"""

import statistics

from repro.analysis import end_to_end_latency, reconstruct
from repro.apps.pps import PpsSystem, four_process_deployment
from repro.core import MonitorMode
from repro.platform import RealClock

CALLS = 40
NETWORK_LATENCY_NS = 400_000  # 0.4 ms each way on remote links
COST_SCALE = 20_000  # reserve burns ~20 us: cheap, overhead-sensitive


def _system(instrument: bool, prefix: str) -> PpsSystem:
    pps = PpsSystem(
        four_process_deployment(collocation=False),
        mode=MonitorMode.LATENCY,
        instrument=instrument,
        clock=RealClock(),
        cost_scale=COST_SCALE,
        uuid_prefix=prefix,
    )
    # Inject latency on genuinely remote links only: loopback connections
    # (client label prefixed by the server's own process) stay fast.
    for client in pps.processes:
        for server in pps.processes:
            if client != server:
                for serial in range(1, 64):
                    pps.network.set_latency(f"{client}/t{serial}", server,
                                            NETWORK_LATENCY_NS)
    return pps


def _drive(pps: PpsSystem, caller: str) -> None:
    stub = pps.orbs[caller].resolve(pps.refs["ResourceManager"])
    for _ in range(CALLS):
        stub.reserve(1)
        stub.free_resources(1)


def _auto_means():
    pps = _system(instrument=True, prefix="2a")
    try:
        _drive(pps, "pps3")  # collocated (ResourceManager lives in pps3)
        _drive(pps, "pps0")  # remote
        database, run_id = pps.collect()
        dscg = reconstruct(database, run_id)
        by_site: dict[str, list[int]] = {"collocated": [], "remote": []}
        for node in dscg.walk():
            if node.operation != "reserve":
                continue
            latency = end_to_end_latency(node)
            if latency is None:
                continue
            site = "collocated" if node.client_process == "pps3" else "remote"
            by_site[site].append(latency)
        return {site: statistics.fmean(vals) for site, vals in by_site.items() if vals}
    finally:
        pps.shutdown()


def _manual_means():
    pps = _system(instrument=False, prefix="2b")
    try:
        results = {}
        for site, caller in (("collocated", "pps3"), ("remote", "pps0")):
            samples = pps.manual_latency(caller, "ResourceManager", "reserve", (1,),
                                         calls=CALLS)
            results[site] = statistics.fmean(samples)
        return results
    finally:
        pps.shutdown()


def test_collocated_error_exceeds_remote_error(benchmark, reporter):
    auto = benchmark.pedantic(_auto_means, rounds=1, iterations=1)
    manual = _manual_means()

    reporter.section("Sec. 4: collocated (opt off) vs remote measurement error")
    errors = {}
    for site in ("collocated", "remote"):
        a, m = auto[site], manual[site]
        errors[site] = abs(a - m) / m * 100 if m else 0.0
        reporter.line(
            f"  {site:11s} auto={a / 1e6:8.3f} ms  manual={m / 1e6:8.3f} ms"
            f"  diff={errors[site]:5.1f}%"
        )
    reporter.line(
        "  -> collocated relative error is the larger one"
        f" ({errors['collocated']:.1f}% vs {errors['remote']:.1f}%)"
    )
    # The paper's qualitative claim. Real-clock noise means we assert the
    # ordering, not a specific gap.
    assert errors["collocated"] >= errors["remote"] * 0.8, errors
