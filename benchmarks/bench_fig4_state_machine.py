"""Figure 4 — the causality-reconstruction state machine's throughput.

The paper's analyzer needed 28 minutes (2003 Java, dual 1.7 GHz) to
process a 195,000-call run. This benchmark measures our state machine's
parse rate over synthetic event streams of every structure the machine
handles (nesting, siblings, oneways, abnormal records), reporting
records/second.
"""

from repro.analysis import reconstruct_from_records
from repro.core import MonitorMode, TracingEvent
from tests.helpers import Call, simulate


def _chain_records(depth: int, siblings: int):
    def nested(levels):
        if levels == 0:
            return ()
        return (Call("I::n", cpu_ns=1, children=nested(levels - 1)),)

    calls = [Call(f"I::top{i}", cpu_ns=1, children=nested(depth)) for i in range(siblings)]
    sim = simulate(calls, mode=MonitorMode.CAUSALITY)
    return sim.records


def test_state_machine_throughput(benchmark, reporter):
    records = _chain_records(depth=8, siblings=200)
    dscg = benchmark(reconstruct_from_records, records)
    rate = len(records) / benchmark.stats["mean"]
    reporter.section("Figure 4: state-machine reconstruction throughput")
    reporter.line(f"  records parsed per run : {len(records)}")
    reporter.line(f"  nodes reconstructed    : {dscg.node_count()}")
    reporter.line(f"  mean parse time        : {benchmark.stats['mean'] * 1e3:.2f} ms")
    reporter.line(f"  throughput             : {rate:,.0f} records/s")
    assert dscg.abnormal_events() == []


def test_state_machine_with_oneway_forks(benchmark, reporter):
    calls = [
        Call("I::root", cpu_ns=1, children=(
            Call("I::cast", oneway=True, cpu_ns=1, children=(Call("I::leaf", cpu_ns=1),)),
            Call("I::leaf", cpu_ns=1),
        ))
        for _ in range(50)
    ]
    sim = simulate(calls, mode=MonitorMode.CAUSALITY, fresh_chain_per_top_call=True)
    dscg = benchmark(reconstruct_from_records, sim.records)
    reporter.section("Figure 4: dashed-path (oneway) transitions")
    reporter.line(f"  chains: {len(dscg.chains)}  oneway links: {len(dscg.links)}")
    assert len(dscg.links) == 50
    assert dscg.abnormal_events() == []


def test_state_machine_abnormal_restart(benchmark, reporter):
    """Damaged streams: the machine flags failures and keeps going."""
    records = _chain_records(depth=4, siblings=100)
    damaged = [
        r
        for index, r in enumerate(records)
        if not (index % 97 == 5 and r.event is TracingEvent.SKEL_START)
    ]
    dscg = benchmark(reconstruct_from_records, damaged)
    abnormal = dscg.abnormal_events()
    reporter.section("Figure 4: abnormal transition handling")
    reporter.line(f"  damaged records removed : {len(records) - len(damaged)}")
    reporter.line(f"  abnormal events flagged : {len(abnormal)}")
    reporter.line(f"  nodes still recovered   : {dscg.node_count()}")
    assert abnormal
    assert dscg.node_count() > 0
