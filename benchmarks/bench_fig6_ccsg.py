"""Figure 6 — the CCSG XML of the PPS, single-processor 4-process config.

"In terms of the PPS's system-wide CPU utilization, Figure 6 shows a
snapshot under Internet Explorer (as an XML viewer). It unveils the CPU
propagation on a configuration of single-processor 4-process on a HPUX
11.0 machine. The self and descendent CPU results are structured
following the call hierarchy."
"""

from repro.analysis import CpuAnalysis, build_ccsg, reconstruct, render_ccsg_xml
from repro.analysis.xmlview import parse_ccsg_xml, split_sec_usec
from repro.apps.pps import PpsSystem, four_process_deployment
from repro.core import MonitorMode


def test_fig6_ccsg_xml(benchmark, reporter):
    pps = PpsSystem(four_process_deployment(), mode=MonitorMode.CPU, uuid_prefix="f6")
    try:
        pps.run(njobs=3, pages=4, complexity=2)
        database, run_id = pps.collect()
        dscg = reconstruct(database, run_id)
        cpu = CpuAnalysis(dscg)

        def build_and_render():
            ccsg = build_ccsg(dscg, cpu)
            return ccsg, render_ccsg_xml(ccsg, description="PPS 1-processor 4-process")

        ccsg, xml = benchmark.pedantic(build_and_render, rounds=5, iterations=1)

        reporter.section("Figure 6: CCSG (CPU Consumption Summarization Graph)")
        reporter.line(f"  deployment        : single-processor 4-process (HPUX 11.0)")
        reporter.line(f"  CCSG nodes        : {ccsg.node_count()}")
        total = cpu.total_by_processor()
        seconds, microseconds = split_sec_usec(total.total_ns())
        reporter.line(f"  total self CPU    : [{seconds}, {microseconds}]"
                      f" across {sorted(total.by_processor)}")
        reporter.line(f"  XML document size : {len(xml):,} bytes")
        reporter.line("")
        reporter.line("  --- document head (as in the IE viewer snapshot) ---")
        for line in xml.splitlines()[:24]:
            reporter.line("  " + line)

        # Paper-faithful structure checks.
        root = parse_ccsg_xml(xml)
        top = root.find("Function")
        assert top.get("interface") == "PPS::JobSource"
        assert top.get("ObjectID")
        assert top.get("InvocationTimes") == "1"
        assert top.find("SelfCPUConsumption") is not None
        assert top.find("DescendentCPUConsumption") is not None
        assert top.find("IncludedFunctionInstances") is not None
        # conservation: root inclusive == system-wide self total
        (tree,) = dscg.root_chains()
        root_node = tree.roots[0]
        assert cpu.inclusive_cpu(root_node).total_ns() == total.total_ns()
    finally:
        pps.shutdown()
