"""Telemetry self-metrics overhead: metrics-off vs metrics-on hot paths.

The framework's hot paths (probe recording, ORB dispatch, GIOP framing,
collector drains) are instrumented behind module-level no-op singletons;
:func:`repro.telemetry.enable` swaps real lock-striped counters in. This
benchmark quantifies both states against the same instrumented call path
so the metrics-off default can be shown to cost nothing beyond noise.
"""

import time

import pytest

from repro import telemetry
from repro.core import MonitorMode

from bench_probe_overhead import build


def _per_call_s(prefix: str, calls: int = 400) -> float:
    stub, processes = build(True, MonitorMode.LATENCY, prefix)
    try:
        stub.ping(0)  # warm up connection
        started = time.perf_counter()
        for _ in range(calls):
            stub.ping(1)
        return (time.perf_counter() - started) / calls
    finally:
        for process in processes:
            process.shutdown()


@pytest.mark.parametrize("metrics_on", [False, True], ids=["metrics-off", "metrics-on"])
def test_per_call_cost(benchmark, reporter, metrics_on, request):
    if metrics_on:
        registry = telemetry.enable(telemetry.MetricsRegistry())
    try:
        stub, processes = build(True, MonitorMode.LATENCY,
                                "d2" if metrics_on else "d1")
        try:
            stub.ping(0)
            result = benchmark.pedantic(
                lambda: stub.ping(7), rounds=200, iterations=1, warmup_rounds=20
            )
            assert result == 7
        finally:
            for process in processes:
                process.shutdown()
        reporter.section(f"Per-call cost with telemetry {'ON' if metrics_on else 'OFF'}")
        reporter.line(f"  mean round trip: {benchmark.stats['mean'] * 1e6:.1f} us")
        reporter.line(f"  median         : {benchmark.stats['median'] * 1e6:.1f} us")
        if metrics_on:
            dispatches = registry.counter("repro_orb_dispatch_total").value()
            reporter.line(f"  dispatches counted: {dispatches}")
            assert dispatches >= 200
    finally:
        telemetry.disable()


def test_metrics_off_within_noise(reporter, benchmark):
    """A/B the same instrumented path: telemetry off vs on.

    The off state is the shipped default; it must stay within measurement
    noise of itself across interleaved samples (no hidden warm-up or
    allocation drift), and the on state's added cost is reported.
    """
    telemetry.disable()
    # Interleave paired samples so machine noise hits both states equally.
    off_a = benchmark.pedantic(_per_call_s, args=("d3",), rounds=1, iterations=1)
    telemetry.enable(telemetry.MetricsRegistry())
    try:
        on = _per_call_s("d4")
    finally:
        telemetry.disable()
    off_b = _per_call_s("d5")

    off = min(off_a, off_b)
    noise = abs(off_a - off_b)
    reporter.section("Telemetry overhead per instrumented remote call")
    reporter.line(f"  metrics off (1st): {off_a * 1e6:7.1f} us")
    reporter.line(f"  metrics off (2nd): {off_b * 1e6:7.1f} us"
                  f"   (run-to-run noise {noise * 1e6:.1f} us)")
    reporter.line(f"  metrics on       : {on * 1e6:7.1f} us")
    reporter.line(f"  added cost       : {(on - off) * 1e6:7.1f} us"
                  f" ({(on / off - 1) * 100:.0f}% of an instrumented null call)")
    # The off path is the no-op default: its two samples must agree within
    # the same factor the on path is allowed to add — i.e. off-vs-off
    # variation is noise, not a hidden telemetry cost.
    assert noise <= max(off_a, off_b) * 0.5
    # Real counters are cheap: well under one order of magnitude.
    assert on < off * 3
