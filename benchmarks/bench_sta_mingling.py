"""Section 2.2 ablation — COM STA chain mingling with and without hooks.

"Note that O1 will not hold true for COM applications. ... The apartment
thread T can switch to serve another incoming call C2 when the call C1
that T is serving issues an outbound call C3 and suffers blocking.
Techniques have been devised to avoid causal chain mingling. In the
actual implementation, only a very limited amount of instrumentation
before and after call sending and dispatching is required."

The ablation runs the same two-client nested-STA workload twice: with the
channel hooks disabled (the naive port of the CORBA technique) and with
them enabled (the paper's fix), and reports abnormal-event counts plus
the hook overhead.
"""

import threading
import time

from repro.analysis import reconstruct_from_records
from repro.com import ComInterface, ComObject, ComRuntime
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.platform import Host, PlatformKind, SimProcess, VirtualClock

IFront = ComInterface("IFront", ("handle",))
IBack = ComInterface("IBack", ("slow",))
CLIENTS = 3


def run_scenario(hooks: bool, prefix: str):
    clock = VirtualClock()
    process = SimProcess(f"sta-{prefix}", Host("h", PlatformKind.HPUX_11, clock=clock))
    MonitoringRuntime(
        process,
        MonitorConfig(mode=MonitorMode.CAUSALITY,
                      uuid_factory=SequentialUuidFactory(prefix)),
    )
    runtime = ComRuntime(process, causality_hooks=hooks)

    class Back(ComObject):
        implements = (IBack,)

        def slow(self, n):
            time.sleep(0.03)
            return n

    class Front(ComObject):
        implements = (IFront,)

        def __init__(self, factory):
            super().__init__()
            self.factory = factory

        def handle(self, n):
            return self.factory().slow(n)

    sta_front = runtime.create_sta("front")
    sta_back = runtime.create_sta("back")
    back_identity = runtime.create_object(Back, sta_back)
    front_identity = runtime.create_object(
        Front, sta_front, lambda: runtime.proxy_for(back_identity, IBack)
    )
    front = runtime.proxy_for(front_identity, IFront)

    results = []
    threads = [
        threading.Thread(target=lambda i=i: results.append(front.handle(i)))
        for i in range(CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
        time.sleep(0.008)  # land later calls mid-pump
    for thread in threads:
        thread.join(timeout=10)
    elapsed = time.perf_counter() - started

    dscg = reconstruct_from_records(process.log_buffer.snapshot())
    process.shutdown()
    assert sorted(results) == list(range(CLIENTS))
    return elapsed, dscg.stats()


def test_sta_mingling_ablation(benchmark, reporter):
    naive_elapsed, naive_stats = benchmark.pedantic(
        run_scenario, args=(False, "b1"), rounds=1, iterations=1
    )
    hooked_elapsed, hooked_stats = run_scenario(True, "b2")

    reporter.section("Sec. 2.2: STA nested-pump causality (ablation)")
    reporter.line(f"  clients pumping through one STA : {CLIENTS}")
    reporter.line(
        f"  hooks OFF: {naive_stats['abnormal_events']} abnormal event(s),"
        f" {naive_stats['chains']} chains, {naive_elapsed:.3f} s"
    )
    reporter.line(
        f"  hooks ON : {hooked_stats['abnormal_events']} abnormal event(s),"
        f" {hooked_stats['chains']} chains, {hooked_elapsed:.3f} s"
    )
    reporter.line("  -> the channel hooks eliminate causal chain mingling")
    assert naive_stats["abnormal_events"] > 0
    assert hooked_stats["abnormal_events"] == 0
    assert hooked_stats["chains"] == CLIENTS
