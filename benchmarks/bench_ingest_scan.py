"""Storage-backend ingest + scan throughput: segment store vs SQLite.

Measures, for a synthetic probe-record run shaped like a real capture
(interleaved chains, repeated interned strings, mostly-narrow timestamp
deltas, a sprinkle of semantics payloads):

- **ingest** — records/sec through ``bulk_ingest`` + ``insert_records``
  split across several collection transactions (the collector drain
  pattern);
- **scan** — records/sec through ``chains_for_run`` consumed
  group-by-group, the analyzer's read path;
- **combined** — ``records / (t_ingest + t_scan)``, the figure the
  storage PR is gated on: the segment store must beat SQLite by
  ``--min-speedup`` (default 3.0) at the full scale of ≥100k records;
- **compaction** — reported for the segment store but *not* part of the
  gated path: it runs in a background thread in production, off the
  ingest and first-scan critical path. Post-compaction scan throughput
  is reported separately (``scan_sealed``).

Both backends run file-backed in a temp directory, best-of-``--repeat``
per phase, fresh stores per repeat.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest_scan.py \
        [--quick] [--check] [--records N] [--min-speedup X] \
        [--min-scan-speedup X] [--output BENCH_ingest_scan.json]

``--quick`` (CI smoke) shrinks the run and gates only on the scan path
beating SQLite (``--min-scan-speedup``, default 1.0): tiny runs
under-amortize the segment writer's per-batch setup, so the combined 3x
gate is only meaningful at full scale.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time


def make_records(count: int, chains: int, seed: int = 42):
    """A capture-shaped record stream: no RNG in the hot loop."""
    from repro.core import CallKind, Domain, ProbeRecord, TracingEvent

    events = tuple(TracingEvent)
    record = ProbeRecord
    interfaces = [f"Mod::Iface{i}" for i in range(40)]
    operations = [f"op{i}" for i in range(25)]
    components = [f"Comp{i}" for i in range(12)]
    processes = [f"proc{i}" for i in range(4)]
    hosts = ["hostA", "hostB"]
    out = []
    wall = 1_700_000_000_000_000_000  # ns since epoch: realistic magnitude
    cpu = 5_000_000
    for i in range(count):
        wall += 900 + (i * 7919) % 40_000
        cpu += 120 + (i * 104729) % 900
        has_sem = i % 16 == 0
        out.append(record(
            chain_uuid=f"{(i * 31) % chains:032x}",
            event_seq=i,
            event=events[i & 3],
            interface=interfaces[i % 40],
            operation=operations[i % 25],
            object_id=f"obj-{i % 64}",
            component=components[i % 12],
            process=processes[i % 4],
            pid=4000 + i % 4,
            host=hosts[i % 2],
            thread_id=100 + i % 8,
            processor_type="x86_64",
            platform="linux",
            call_kind=CallKind.ONEWAY if i % 11 == 0 else CallKind.SYNC,
            collocated=i % 5 == 0,
            domain=Domain.CORBA if i % 3 else Domain.COM,
            wall_start=wall,
            wall_end=wall + 1500 + (i % 700),
            cpu_start=cpu,
            cpu_end=cpu + 90 + (i % 50),
            child_chain_uuid=f"{(i * 31 + 7) % chains:032x}" if i % 9 == 0 else None,
            semantics={"args": [i % 100], "status": "ok"} if has_sem else None,
        ))
    return out


def open_backend(kind: str, root: str):
    if kind == "sqlite":
        from repro.collector import MonitoringDatabase

        return MonitoringDatabase(os.path.join(root, "bench.db"))
    from repro.store import SegmentStore

    return SegmentStore(os.path.join(root, "bench-store"), auto_compact=0)


def run_backend(kind: str, records, batches: int, repeat: int) -> dict:
    """Best-of-``repeat`` ingest and scan times for one backend."""
    from repro.core import RunMetadata

    count = len(records)
    step = (count + batches - 1) // batches
    best_ingest = best_scan = float("inf")
    best_compact = best_scan_sealed = None
    for _ in range(repeat):
        root = tempfile.mkdtemp(prefix=f"bench-{kind}-")
        try:
            backend = open_backend(kind, root)
            backend.create_run(RunMetadata(run_id="bench", monitor_mode="cpu"))

            started = time.perf_counter()
            for lo in range(0, count, step):
                with backend.bulk_ingest():
                    backend.insert_records("bench", records[lo:lo + step])
            best_ingest = min(best_ingest, time.perf_counter() - started)

            started = time.perf_counter()
            scanned = 0
            for _chain, group in backend.chains_for_run("bench"):
                scanned += len(group)
            best_scan = min(best_scan, time.perf_counter() - started)
            if scanned != count:
                raise SystemExit(
                    f"{kind}: scan returned {scanned} of {count} records"
                )

            if kind == "segment":
                started = time.perf_counter()
                backend.compact("bench")
                elapsed = time.perf_counter() - started
                best_compact = min(best_compact or elapsed, elapsed)
                started = time.perf_counter()
                scanned = sum(
                    len(group) for _c, group in backend.chains_for_run("bench")
                )
                elapsed = time.perf_counter() - started
                best_scan_sealed = min(best_scan_sealed or elapsed, elapsed)
                if scanned != count:
                    raise SystemExit(f"sealed scan returned {scanned}/{count}")
            backend.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)

    result = {
        "ingest_s": round(best_ingest, 4),
        "scan_s": round(best_scan, 4),
        "combined_s": round(best_ingest + best_scan, 4),
        "ingest_records_per_s": round(count / best_ingest),
        "scan_records_per_s": round(count / best_scan),
        "combined_records_per_s": round(count / (best_ingest + best_scan)),
    }
    if best_compact is not None:
        result["compact_s"] = round(best_compact, 4)
        result["scan_sealed_s"] = round(best_scan_sealed, 4)
        result["scan_sealed_records_per_s"] = round(count / best_scan_sealed)
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=120_000)
    parser.add_argument("--chains", type=int, default=0,
                        help="chain count (default: records // 40)")
    parser.add_argument("--batches", type=int, default=8,
                        help="collection transactions the ingest is split into")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 20k records, 1 repeat, scan-only gate")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if the speedup gates fail")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required combined speedup at full scale")
    parser.add_argument("--min-scan-speedup", type=float, default=1.0,
                        help="required scan speedup (the --quick gate)")
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)

    if args.quick:
        args.records = min(args.records, 20_000)
        args.repeat = 1
    chains = args.chains or max(8, args.records // 40)

    records = make_records(args.records, chains)
    results = {}
    for kind in ("sqlite", "segment"):
        results[kind] = run_backend(kind, records, args.batches, args.repeat)
        print(f"{kind:8s} ingest {results[kind]['ingest_s']:.3f}s"
              f" scan {results[kind]['scan_s']:.3f}s"
              f" combined {results[kind]['combined_records_per_s']:,} rec/s")

    speedups = {
        phase: round(
            results["sqlite"][f"{phase}_s"] / results["segment"][f"{phase}_s"], 2
        )
        for phase in ("ingest", "scan", "combined")
    }
    print(f"speedup: ingest {speedups['ingest']}x scan {speedups['scan']}x"
          f" combined {speedups['combined']}x")

    document = {
        "benchmark": "ingest_scan",
        "records": args.records,
        "chains": chains,
        "batches": args.batches,
        "repeat": args.repeat,
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "speedups": speedups,
    }
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        if args.quick:
            if speedups["scan"] < args.min_scan_speedup:
                print(f"FAIL: scan speedup {speedups['scan']}x <"
                      f" {args.min_scan_speedup}x", file=sys.stderr)
                return 1
        elif speedups["combined"] < args.min_speedup:
            print(f"FAIL: combined speedup {speedups['combined']}x <"
                  f" {args.min_speedup}x", file=sys.stderr)
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
