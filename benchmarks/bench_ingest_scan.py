"""Storage-backend ingest + scan throughput: segment store vs SQLite.

Measures, for a synthetic probe-record run shaped like a real capture
(interleaved chains, repeated interned strings, mostly-narrow timestamp
deltas, a sprinkle of semantics payloads):

- **ingest** — records/sec through ``bulk_ingest`` + ``insert_records``
  split across several collection transactions (the collector drain
  pattern);
- **scan** — records/sec through ``chains_for_run`` consumed
  group-by-group, the analyzer's read path;
- **combined** — ``records / (t_ingest + t_scan)``, the figure the
  storage PR is gated on: the segment store must beat SQLite by
  ``--min-speedup`` (default 3.0) at the full scale of ≥100k records;
- **compaction** — reported for the segment store but *not* part of the
  gated path: it runs in a background thread in production, off the
  ingest and first-scan critical path. Post-compaction scan throughput
  is reported separately (``scan_sealed``).

Both backends run file-backed in a temp directory, best-of-``--repeat``
per phase, fresh stores per repeat.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest_scan.py \
        [--quick] [--check] [--records N] [--min-speedup X] \
        [--min-scan-speedup X] [--output BENCH_ingest_scan.json]

``--quick`` (CI smoke) shrinks the run and gates only on the scan path
beating SQLite (``--min-scan-speedup``, default 1.0): tiny runs
under-amortize the segment writer's per-batch setup, so the combined 3x
gate is only meaningful at full scale.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time


def make_records(count: int, chains: int, seed: int = 42):
    """A capture-shaped record stream: no RNG in the hot loop."""
    from repro.core import CallKind, Domain, ProbeRecord, TracingEvent

    events = tuple(TracingEvent)
    record = ProbeRecord
    interfaces = [f"Mod::Iface{i}" for i in range(40)]
    operations = [f"op{i}" for i in range(25)]
    components = [f"Comp{i}" for i in range(12)]
    processes = [f"proc{i}" for i in range(4)]
    hosts = ["hostA", "hostB"]
    out = []
    wall = 1_700_000_000_000_000_000  # ns since epoch: realistic magnitude
    cpu = 5_000_000
    for i in range(count):
        wall += 900 + (i * 7919) % 40_000
        cpu += 120 + (i * 104729) % 900
        has_sem = i % 16 == 0
        out.append(record(
            chain_uuid=f"{(i * 31) % chains:032x}",
            event_seq=i,
            event=events[i & 3],
            interface=interfaces[i % 40],
            operation=operations[i % 25],
            object_id=f"obj-{i % 64}",
            component=components[i % 12],
            process=processes[i % 4],
            pid=4000 + i % 4,
            host=hosts[i % 2],
            thread_id=100 + i % 8,
            processor_type="x86_64",
            platform="linux",
            call_kind=CallKind.ONEWAY if i % 11 == 0 else CallKind.SYNC,
            collocated=i % 5 == 0,
            domain=Domain.CORBA if i % 3 else Domain.COM,
            wall_start=wall,
            wall_end=wall + 1500 + (i % 700),
            cpu_start=cpu,
            cpu_end=cpu + 90 + (i % 50),
            child_chain_uuid=f"{(i * 31 + 7) % chains:032x}" if i % 9 == 0 else None,
            semantics={"args": [i % 100], "status": "ok"} if has_sem else None,
        ))
    return out


def open_backend(kind: str, root: str):
    if kind == "sqlite":
        from repro.collector import MonitoringDatabase

        return MonitoringDatabase(os.path.join(root, "bench.db"))
    from repro.store import SegmentStore

    return SegmentStore(os.path.join(root, "bench-store"), auto_compact=0)


def run_backend(kind: str, records, batches: int, repeat: int) -> dict:
    """Best-of-``repeat`` ingest and scan times for one backend."""
    from repro.core import RunMetadata

    count = len(records)
    step = (count + batches - 1) // batches
    best_ingest = best_scan = float("inf")
    best_compact = best_scan_sealed = None
    for _ in range(repeat):
        root = tempfile.mkdtemp(prefix=f"bench-{kind}-")
        try:
            backend = open_backend(kind, root)
            backend.create_run(RunMetadata(run_id="bench", monitor_mode="cpu"))

            started = time.perf_counter()
            for lo in range(0, count, step):
                with backend.bulk_ingest():
                    backend.insert_records("bench", records[lo:lo + step])
            best_ingest = min(best_ingest, time.perf_counter() - started)

            started = time.perf_counter()
            scanned = 0
            for _chain, group in backend.chains_for_run("bench"):
                scanned += len(group)
            best_scan = min(best_scan, time.perf_counter() - started)
            if scanned != count:
                raise SystemExit(
                    f"{kind}: scan returned {scanned} of {count} records"
                )

            if kind == "segment":
                started = time.perf_counter()
                backend.compact("bench")
                elapsed = time.perf_counter() - started
                best_compact = min(best_compact or elapsed, elapsed)
                started = time.perf_counter()
                scanned = sum(
                    len(group) for _c, group in backend.chains_for_run("bench")
                )
                elapsed = time.perf_counter() - started
                best_scan_sealed = min(best_scan_sealed or elapsed, elapsed)
                if scanned != count:
                    raise SystemExit(f"sealed scan returned {scanned}/{count}")
            backend.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)

    result = {
        "ingest_s": round(best_ingest, 4),
        "scan_s": round(best_scan, 4),
        "combined_s": round(best_ingest + best_scan, 4),
        "ingest_records_per_s": round(count / best_ingest),
        "scan_records_per_s": round(count / best_scan),
        "combined_records_per_s": round(count / (best_ingest + best_scan)),
    }
    if best_compact is not None:
        result["compact_s"] = round(best_compact, 4)
        result["scan_sealed_s"] = round(best_scan_sealed, 4)
        result["scan_sealed_records_per_s"] = round(count / best_scan_sealed)
    return result


def _pick_chain_prefix(records, target: float = 0.01) -> tuple[str, float]:
    """Shortest all-zero uuid prefix whose selectivity is ≤ ``target``.

    Chain uuids here are zero-padded hex, so longer runs of leading
    zeros select exponentially fewer chains; probe lengths until the
    matched-record fraction first drops under the target (chosen
    empirically from the data, like a user zooming into one chain
    family).
    """
    total = len(records)
    for length in range(24, 33):
        prefix = "0" * length
        matched = sum(1 for r in records if r.chain_uuid.startswith(prefix))
        if 0 < matched <= total * target:
            return prefix, matched / total
    # Degenerate shapes (very few chains): fall back to one full uuid.
    uuid = records[0].chain_uuid
    matched = sum(1 for r in records if r.chain_uuid == uuid)
    return uuid, matched / total


def _timed_predicated_scan(store, predicate):
    from repro.store import ScanStats

    stats = ScanStats()
    started = time.perf_counter()
    matched = sum(
        len(group)
        for _c, group in store.chains_for_run("bench", predicate=predicate,
                                              stats=stats)
    )
    return time.perf_counter() - started, matched, stats


def run_selective(records, batches: int, repeat: int) -> dict:
    """Predicate-pushdown speedups over the sealed segment store.

    Three predicate shapes, each timed against the unpredicated sealed
    scan of the same store: a ~1%-selectivity chain-uuid prefix, a
    single-operation filter, and a ~1% time window. ``speedup`` is
    unpredicated-scan-time / predicated-scan-time; ``frames_decoded``
    shows how much decode work pruning actually skipped.
    """
    from repro.core import RunMetadata
    from repro.store import ScanPredicate, ScanStats, SegmentStore

    count = len(records)
    prefix, prefix_sel = _pick_chain_prefix(records)
    operation = records[0].operation
    op_matched = sum(1 for r in records if r.operation == operation)
    anchors_lo = records[int(count * 0.495)].wall_start
    anchors_hi = records[int(count * 0.505)].wall_start
    shapes = {
        "chain_prefix": ScanPredicate(chain_prefix=prefix),
        "single_operation": ScanPredicate(operations=frozenset({operation})),
        "time_window": ScanPredicate(ts_min=anchors_lo, ts_max=anchors_hi),
    }

    best: dict[str, dict] = {}
    best_full = float("inf")
    for _ in range(repeat):
        root = tempfile.mkdtemp(prefix="bench-selective-")
        try:
            store = SegmentStore(os.path.join(root, "store"), auto_compact=0)
            store.create_run(RunMetadata(run_id="bench", monitor_mode="cpu"))
            step = (count + batches - 1) // batches
            for lo in range(0, count, step):
                with store.bulk_ingest():
                    store.insert_records("bench", records[lo:lo + step])
            store.compact("bench")

            full_stats = ScanStats()
            started = time.perf_counter()
            scanned = sum(
                len(g) for _c, g in store.chains_for_run(
                    "bench", stats=full_stats
                )
            )
            full_s = time.perf_counter() - started
            if scanned != count:
                raise SystemExit(f"selective: full scan {scanned}/{count}")
            best_full = min(best_full, full_s)

            for name, predicate in shapes.items():
                elapsed, matched, stats = _timed_predicated_scan(store, predicate)
                if stats.frames_decoded > full_stats.frames_decoded:
                    raise SystemExit(
                        f"selective/{name}: predicated scan decoded"
                        f" {stats.frames_decoded} frames >"
                        f" {full_stats.frames_decoded} unpredicated"
                    )
                entry = best.get(name)
                if entry is None or elapsed < entry["scan_s"]:
                    best[name] = {
                        "scan_s": elapsed,
                        "records_matched": matched,
                        "selectivity": round(matched / count, 4),
                        "frames_decoded": stats.frames_decoded,
                        "segments_pruned": stats.segments_pruned,
                        "groups_pruned": stats.groups_pruned,
                    }
            store.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)

    result = {
        "full_scan_s": round(best_full, 4),
        "full_frames_decoded": count,
        "chain_prefix_value": prefix,
        "chain_prefix_selectivity": round(prefix_sel, 4),
        "single_operation_selectivity": round(op_matched / count, 4),
        "shapes": {},
    }
    for name, entry in best.items():
        entry["speedup"] = round(best_full / entry["scan_s"], 2)
        entry["scan_s"] = round(entry["scan_s"], 4)
        result["shapes"][name] = entry
    return result


def run_catalog(records, n_runs: int, repeat: int) -> dict:
    """Cross-run catalog query vs the naive per-run scan-and-filter loop.

    The same records split across ``n_runs`` runs; the query is "latency
    stats of one operation over every run". The naive baseline is what a
    user without the catalog writes: scan every run unpredicated and
    filter in Python.
    """
    from repro.core import RunMetadata
    from repro.store import RunCatalog, ScanPredicate, SegmentStore

    operation = records[0].operation
    predicate = ScanPredicate(operations=frozenset({operation}))
    per_run = (len(records) + n_runs - 1) // n_runs
    best_naive = best_catalog = best_catalog_warm = float("inf")
    workers = min(4, n_runs)
    for _ in range(repeat):
        root = tempfile.mkdtemp(prefix="bench-catalog-")
        try:
            store = SegmentStore(os.path.join(root, "store"), auto_compact=0)
            for n in range(n_runs):
                run_id = f"run-{n:03d}"
                store.create_run(RunMetadata(run_id=run_id, monitor_mode="cpu"))
                with store.bulk_ingest():
                    store.insert_records(
                        run_id, records[n * per_run:(n + 1) * per_run]
                    )
            store.compact_all()
            catalog = RunCatalog(store)

            started = time.perf_counter()
            naive = []
            for run_id in catalog.run_ids():
                for _c, group in store.chains_for_run(run_id):
                    naive.extend(
                        r.wall_end - r.wall_start
                        for r in group
                        if r.operation == operation
                        and r.wall_start is not None and r.wall_end is not None
                    )
            naive.sort()
            best_naive = min(best_naive, time.perf_counter() - started)

            started = time.perf_counter()
            result = catalog.query(predicate, workers=workers)
            best_catalog = min(best_catalog, time.perf_counter() - started)
            expected = sum(row["records"] for row in result.runs)
            if expected != sum(1 for r in records if r.operation == operation):
                raise SystemExit("catalog: cross-run count mismatch")

            # Second query hits the warmed per-run summaries / mmaps.
            started = time.perf_counter()
            catalog.query(predicate, workers=workers)
            best_catalog_warm = min(
                best_catalog_warm, time.perf_counter() - started
            )
            store.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)

    return {
        "runs": n_runs,
        "workers": workers,
        "naive_s": round(best_naive, 4),
        "catalog_s": round(best_catalog, 4),
        "catalog_warm_s": round(best_catalog_warm, 4),
        "speedup": round(best_naive / best_catalog, 2),
    }


def run_compaction_lag(records, n_runs: int, max_compactors: int) -> dict:
    """Sealed-segment lag under sustained multi-run ingest.

    Records stream round-robin into ``n_runs`` runs with background
    compaction on (``auto_compact`` low, ``max_compactors`` parallel
    workers over disjoint runs). ``max_spool_lag`` is the worst
    uncompacted-segment backlog any run accumulated; bounded lag means
    the compactor pool kept up with ingest.
    """
    from repro.core import RunMetadata
    from repro.store import SegmentStore

    root = tempfile.mkdtemp(prefix="bench-compact-")
    try:
        store = SegmentStore(
            os.path.join(root, "store"), auto_compact=4,
            compact_in_background=True, max_compactors=max_compactors,
        )
        run_ids = [f"run-{n:03d}" for n in range(n_runs)]
        for run_id in run_ids:
            store.create_run(RunMetadata(run_id=run_id, monitor_mode="cpu"))
        step = 2_000
        max_lag = 0
        started = time.perf_counter()
        for lo in range(0, len(records), step):
            run_id = run_ids[(lo // step) % n_runs]
            store.insert_records(run_id, records[lo:lo + step])
            max_lag = max(
                max_lag,
                max(store.compaction_state(r)["spool_segments"]
                    for r in run_ids),
            )
        ingest_s = time.perf_counter() - started
        deadline = time.time() + 60
        while any(
            store.compaction_state(r)["compaction_running"] for r in run_ids
        ) and time.time() < deadline:
            time.sleep(0.01)
        settled = [store.compaction_state(r)["segments"] for r in run_ids]
        errors = [store.compaction_state(r)["last_error"] for r in run_ids]
        if any(errors):
            raise SystemExit(f"compaction errors: {errors}")
        store.close()
        return {
            "runs": n_runs,
            "max_compactors": max_compactors,
            "ingest_s": round(ingest_s, 4),
            "max_spool_lag": max_lag,
            "settled_segments": max(settled),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=120_000)
    parser.add_argument("--chains", type=int, default=0,
                        help="chain count (default: records // 40)")
    parser.add_argument("--batches", type=int, default=8,
                        help="collection transactions the ingest is split into")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 20k records, 1 repeat, scan-only gate")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if the speedup gates fail")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required combined speedup at full scale")
    parser.add_argument("--min-scan-speedup", type=float, default=1.0,
                        help="required scan speedup (the --quick gate)")
    parser.add_argument("--min-selective-speedup", type=float, default=5.0,
                        help="required ≤1%%-selectivity predicated-scan"
                             " speedup over the full sealed scan (full"
                             " scale only)")
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)

    if args.quick:
        args.records = min(args.records, 20_000)
        args.repeat = 1
    chains = args.chains or max(8, args.records // 40)

    records = make_records(args.records, chains)
    results = {}
    for kind in ("sqlite", "segment"):
        results[kind] = run_backend(kind, records, args.batches, args.repeat)
        print(f"{kind:8s} ingest {results[kind]['ingest_s']:.3f}s"
              f" scan {results[kind]['scan_s']:.3f}s"
              f" combined {results[kind]['combined_records_per_s']:,} rec/s")

    speedups = {
        phase: round(
            results["sqlite"][f"{phase}_s"] / results["segment"][f"{phase}_s"], 2
        )
        for phase in ("ingest", "scan", "combined")
    }
    print(f"speedup: ingest {speedups['ingest']}x scan {speedups['scan']}x"
          f" combined {speedups['combined']}x")

    selective = run_selective(records, args.batches, args.repeat)
    for name, shape in selective["shapes"].items():
        print(f"selective/{name:17s} {shape['selectivity']*100:5.2f}% of records,"
              f" {shape['speedup']}x over full scan"
              f" ({shape['frames_decoded']:,} frames decoded)")

    n_runs = 4 if args.quick else 8
    catalog = run_catalog(records, n_runs, args.repeat)
    print(f"catalog: {catalog['runs']} runs, query {catalog['catalog_s']:.3f}s"
          f" vs naive {catalog['naive_s']:.3f}s ({catalog['speedup']}x,"
          f" warm {catalog['catalog_warm_s']:.3f}s)")

    compaction = run_compaction_lag(records, n_runs, max_compactors=2)
    print(f"compaction lag: max {compaction['max_spool_lag']} spool segments"
          f" across {compaction['runs']} runs"
          f" ({compaction['max_compactors']} compactors), settled at"
          f" {compaction['settled_segments']}")

    document = {
        "benchmark": "ingest_scan",
        "records": args.records,
        "chains": chains,
        "batches": args.batches,
        "repeat": args.repeat,
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "speedups": speedups,
        "selective": selective,
        "catalog": catalog,
        "compaction_lag": compaction,
    }
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        # The pushdown invariant gates at every scale: a predicated scan
        # must never decode more frames than the unpredicated one.
        # (run_selective already hard-fails on violation; re-assert on
        # the recorded numbers so the gate is visible in the output.)
        for name, shape in selective["shapes"].items():
            if shape["frames_decoded"] > selective["full_frames_decoded"]:
                print(f"FAIL: selective/{name} decoded"
                      f" {shape['frames_decoded']} frames >"
                      f" {selective['full_frames_decoded']} unpredicated",
                      file=sys.stderr)
                return 1
        if args.quick:
            if speedups["scan"] < args.min_scan_speedup:
                print(f"FAIL: scan speedup {speedups['scan']}x <"
                      f" {args.min_scan_speedup}x", file=sys.stderr)
                return 1
        else:
            if speedups["combined"] < args.min_speedup:
                print(f"FAIL: combined speedup {speedups['combined']}x <"
                      f" {args.min_speedup}x", file=sys.stderr)
                return 1
            # At ≤1% selectivity the chain-prefix shape must show real
            # pruning wins, not just post-decode filtering.
            shape = selective["shapes"]["chain_prefix"]
            if (shape["selectivity"] <= 0.01
                    and shape["speedup"] < args.min_selective_speedup):
                print(f"FAIL: chain-prefix selective speedup"
                      f" {shape['speedup']}x < {args.min_selective_speedup}x"
                      f" at {shape['selectivity']*100:.2f}% selectivity",
                      file=sys.stderr)
                return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
