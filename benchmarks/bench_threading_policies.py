"""Section 2.2 — causality capture under the three server threading policies.

Runs an identical concurrent workload against thread-per-request,
thread-per-connection and thread-pool servers and reports throughput plus
reconstruction cleanliness — observations O1/O2 predict identical,
untangled chains in every case.
"""

import threading
import time

import pytest

from repro.analysis import reconstruct_from_records
from repro.core import (
    MonitorConfig,
    MonitoringRuntime,
    MonitorMode,
    SequentialUuidFactory,
)
from repro.idl import compile_idl
from repro.orb import (
    InterfaceRegistry,
    Orb,
    ThreadPerConnection,
    ThreadPerRequest,
    ThreadPool,
)
from repro.platform import Host, Network, PlatformKind, SimProcess, VirtualClock

IDL = "module B { interface Svc { long step(in long n); }; };"
CLIENTS = 4
CALLS = 25


def run_policy(policy, prefix):
    registry = InterfaceRegistry()
    compiled = compile_idl(IDL, instrument=True, registry=registry)
    clock = VirtualClock()
    network = Network()
    host = Host("h", PlatformKind.HPUX_11, clock=clock)
    uuid_factory = SequentialUuidFactory(prefix)
    processes = []

    server = SimProcess("server", host)
    MonitoringRuntime(server, MonitorConfig(mode=MonitorMode.CAUSALITY,
                                            uuid_factory=uuid_factory))
    server_orb = Orb(server, network, policy=policy, registry=registry)
    processes.append(server)

    class SvcImpl(compiled.Svc):
        def step(self, n):
            clock.consume(100)
            return n + 1

    ref = server_orb.activate(SvcImpl())
    stubs = []
    for index in range(CLIENTS):
        client = SimProcess(f"client{index}", host)
        MonitoringRuntime(client, MonitorConfig(mode=MonitorMode.CAUSALITY,
                                                uuid_factory=uuid_factory))
        orb = Orb(client, network, registry=registry)
        stubs.append(orb.resolve(ref))
        processes.append(client)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=lambda stub=stub: [stub.step(i) for i in range(CALLS)])
        for stub in stubs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    records = []
    for process in processes:
        records.extend(process.log_buffer.drain())
    dscg = reconstruct_from_records(records)
    for process in processes:
        process.shutdown()
    return elapsed, dscg.stats()


@pytest.mark.parametrize(
    "policy_factory,prefix",
    [
        (ThreadPerRequest, "a1"),
        (ThreadPerConnection, "a2"),
        (lambda: ThreadPool(size=4), "a3"),
    ],
    ids=["thread-per-request", "thread-per-connection", "thread-pool-4"],
)
def test_policy_causality(benchmark, reporter, policy_factory, prefix):
    elapsed, stats = benchmark.pedantic(
        run_policy, args=(policy_factory(), prefix), rounds=1, iterations=1
    )
    total_calls = CLIENTS * CALLS
    reporter.section(f"Threading policy: {policy_factory().name}")
    reporter.line(f"  calls          : {total_calls} from {CLIENTS} concurrent clients")
    reporter.line(f"  wall time      : {elapsed:.3f} s"
                  f"  ({total_calls / elapsed:,.0f} calls/s)")
    reporter.line(f"  chains         : {stats['chains']} (one per client thread)")
    reporter.line(f"  nodes          : {stats['nodes']}")
    reporter.line(f"  abnormal events: {stats['abnormal_events']}")
    assert stats["chains"] == CLIENTS
    assert stats["nodes"] == total_calls
    assert stats["abnormal_events"] == 0
