"""Streaming detection overhead and detection latency.

Two questions about ``repro.analysis.streaming``:

- **per-record overhead** — how much slower is consuming a record
  stream through the :class:`StreamingReconstructor` (incremental
  Figure-4 machine) and the full :class:`StreamingDetector` (baselines +
  z-scoring + incident state) than just draining the records? Measured
  on a synthetic nested-call capture, best-of-``--repeat``, reported in
  µs/record over the plain-drain baseline.
- **detection latency** — replaying the seeded ``mid->back`` delay
  scenario, how many records pass between the first server-side record
  of the first delayed call (the earliest replay point where evidence
  of the delay exists) and the completion that became the incident's
  trigger? The reported incident then opens ``persistence`` anomalous
  completions later by construction.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming_detection.py \
        [--quick] [--check] [--calls N] \
        [--max-overhead-us X] [--max-detection-records N] \
        [--output BENCH_streaming_detection.json]

``--check`` gates on: at least one incident, ``BackImpl`` ranked as the
root cause of every incident, detection latency within
``--max-detection-records``, and per-record detector overhead within
``--max-overhead-us``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time


def make_stream(calls: int, spike_every: int = 97):
    """Synthetic capture: nested two-level call trees, one chain each.

    Runs the real probe entry points on a virtual clock (no fake
    records), with an occasional latency spike so the detector's
    anomalous paths are exercised too.
    """
    from repro.core import (
        MonitorConfig,
        MonitoringRuntime,
        MonitorMode,
        OperationInfo,
        SequentialUuidFactory,
    )
    from repro.platform import Host, PlatformKind, SimProcess, VirtualClock

    clock = VirtualClock()
    host = Host("bench-host", PlatformKind.HPUX_11, clock=clock)
    process = SimProcess("bench", host)
    runtime = MonitoringRuntime(
        process,
        MonitorConfig(
            mode=MonitorMode.LATENCY, uuid_factory=SequentialUuidFactory("be")
        ),
    )
    outer = OperationInfo("B::F", "f", "obj-1", "CompF")
    inner = OperationInfo("B::G", "g", "obj-2", "CompG")
    for i in range(calls):
        cpu = 40_000 if i % spike_every == spike_every - 1 else 1_000
        outer_stub = runtime.stub_start(outer)
        outer_skel = runtime.skel_start(outer, outer_stub.request_ftl_payload)
        inner_stub = runtime.stub_start(inner)
        inner_skel = runtime.skel_start(inner, inner_stub.request_ftl_payload)
        clock.consume(cpu)
        runtime.stub_end(inner_stub, runtime.skel_end(inner_skel))
        clock.consume(500)
        runtime.stub_end(outer_stub, runtime.skel_end(outer_skel))
        runtime.unbind_ftl()
    return process.log_buffer.snapshot()


def best_of(repeat: int, run) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def measure_overhead(calls: int, repeat: int) -> dict:
    from repro.analysis.streaming import StreamingDetector, StreamingReconstructor

    records = make_stream(calls)
    count = len(records)

    def drain():
        for _record in records:
            pass

    def reconstruct_only():
        StreamingReconstructor().ingest_many(records)

    def detect():
        detector = StreamingDetector()
        detector.ingest_many(records)
        detector.finalize()

    drain_s = best_of(repeat, drain)
    reconstruct_s = best_of(repeat, reconstruct_only)
    detect_s = best_of(repeat, detect)
    return {
        "records": count,
        "drain_s": round(drain_s, 4),
        "reconstruct_s": round(reconstruct_s, 4),
        "detect_s": round(detect_s, 4),
        "drain_records_per_s": round(count / drain_s),
        "reconstruct_records_per_s": round(count / reconstruct_s),
        "detect_records_per_s": round(count / detect_s),
        "reconstruct_overhead_us_per_record": round(
            (reconstruct_s - drain_s) / count * 1e6, 3
        ),
        "detect_overhead_us_per_record": round(
            (detect_s - drain_s) / count * 1e6, 3
        ),
    }


def measure_detection_latency(seed: int) -> dict:
    from repro.analysis.streaming import detect_run, run_seeded_delay_scenario

    scenario = run_seeded_delay_scenario(seed)
    try:
        detector = detect_run(scenario.store, scenario.run_id)
        records = list(scenario.store.all_records(scenario.run_id))

        # The nth top-level call starts the nth chain (the driver unbinds
        # its FTL between calls), so the first delayed call's records are
        # those of chain number ``window_start``.
        chain_order: list[str] = []
        seen = set()
        for record in records:
            if record.chain_uuid not in seen:
                seen.add(record.chain_uuid)
                chain_order.append(record.chain_uuid)
        window_start = scenario.fault["window_start"]
        delayed_chain = chain_order[window_start]
        # The collector stores records grouped by process, so detection
        # cannot fire before the delayed call's server-side records show
        # up in the back process's block — measure latency from there
        # (the earliest replay point where the evidence exists at all).
        first_delay_record = next(
            index
            for index, record in enumerate(records, start=1)
            if record.chain_uuid == delayed_chain and record.process == "back"
        )
        incidents = detector.incidents
        opened_at = min(i.opened_at_record for i in incidents) if incidents else None
        return {
            "seed": seed,
            "calls": scenario.calls,
            "records": len(records),
            "fault": scenario.fault,
            "incidents": len(incidents),
            "root_causes": sorted(
                {i.root_cause.component for i in incidents if i.root_cause}
            ),
            "first_delayed_record_index": first_delay_record,
            "incident_opened_at_record": opened_at,
            "detection_latency_records": (
                opened_at - first_delay_record if opened_at is not None else None
            ),
        }
    finally:
        scenario.store.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--calls", type=int, default=20_000,
                        help="synthetic call trees for the overhead phase")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7,
                        help="seed for the detection-latency scenario")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 4k calls, 1 repeat")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if the gates fail")
    parser.add_argument("--max-overhead-us", type=float, default=200.0,
                        help="max detector overhead per record (µs)")
    parser.add_argument("--max-detection-records", type=int, default=96,
                        help="max records from first delayed call to open")
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)

    if args.quick:
        args.calls = min(args.calls, 4_000)
        args.repeat = 1

    overhead = measure_overhead(args.calls, args.repeat)
    print(f"overhead: drain {overhead['drain_records_per_s']:,} rec/s,"
          f" reconstruct +{overhead['reconstruct_overhead_us_per_record']}µs,"
          f" detect +{overhead['detect_overhead_us_per_record']}µs per record")

    detection = measure_detection_latency(args.seed)
    print(f"detection: {detection['incidents']} incident(s),"
          f" latency {detection['detection_latency_records']} records"
          f" (root causes {detection['root_causes']})")

    document = {
        "benchmark": "streaming_detection",
        "calls": args.calls,
        "repeat": args.repeat,
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "overhead": overhead,
        "detection": detection,
    }
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = []
        if detection["incidents"] < 1:
            failures.append("no incident detected on the seeded scenario")
        if detection["root_causes"] != ["BackImpl"]:
            failures.append(f"root causes {detection['root_causes']}"
                            " != ['BackImpl']")
        latency = detection["detection_latency_records"]
        if latency is None or latency > args.max_detection_records:
            failures.append(f"detection latency {latency} records >"
                            f" {args.max_detection_records}")
        per_record = overhead["detect_overhead_us_per_record"]
        if per_record > args.max_overhead_us:
            failures.append(f"detector overhead {per_record}µs/record >"
                            f" {args.max_overhead_us}µs")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
